#include <dirent.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/binfmt.h"
#include "src/graph/io.h"
#include "src/run/run_spec.h"
#include "src/run/runner.h"
#include "src/serve/catalog.h"
#include "src/serve/client.h"
#include "src/serve/latency_histogram.h"
#include "src/serve/net.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/wire.h"

namespace trilist::serve {
namespace {

// ---------------------------------------------------------------------------
// Wire codec

TEST(WireTest, RoundTripsAllTypes) {
  WireWriter w;
  w.U8(7);
  w.U16(65535);
  w.U32(0xdeadbeef);
  w.U64(1ull << 60);
  w.I64(-42);
  w.F64(3.25);
  w.Str("hello");
  const std::string bytes = std::move(w).Take();

  WireReader r(bytes);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double f64;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U16(&u16).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 65535);
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireTest, RejectsTruncationAndTrailingBytes) {
  WireWriter w;
  w.U32(123);
  const std::string bytes = std::move(w).Take();

  // Every strict prefix fails the read without touching out-of-bounds
  // memory (the discipline shared with the .tlg loader).
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    WireReader r(prefix);
    uint32_t v;
    EXPECT_FALSE(r.U32(&v).ok()) << "prefix length " << len;
  }
  const std::string extended = bytes + "x";
  WireReader r(extended);
  uint32_t v;
  ASSERT_TRUE(r.U32(&v).ok());
  EXPECT_FALSE(r.ExpectEnd().ok());
}

TEST(WireTest, RejectsOversizedString) {
  // A forged length prefix must not trigger a giant allocation: the
  // reader rejects it against both the cap and the remaining bytes.
  WireWriter w;
  w.U32(0x7fffffff);  // string length claiming 2 GiB
  const std::string bytes = std::move(w).Take();
  WireReader r(bytes);
  std::string s;
  EXPECT_FALSE(r.Str(&s).ok());
}

// ---------------------------------------------------------------------------
// Protocol framing

TEST(ProtocolTest, QueryRequestRoundTrips) {
  QueryRequest request;
  request.graph = "web";
  request.orient = OrientSpec{PermutationKind::kUniform, 99};
  request.methods = {Method::kT1, Method::kE4};
  request.threads = 4;
  request.repeats = 3;

  const std::string payload = EncodeQueryRequest(request);
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, MsgType::kQuery);

  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(body, &decoded).ok());
  EXPECT_EQ(decoded.graph, "web");
  EXPECT_EQ(decoded.orient.kind, PermutationKind::kUniform);
  EXPECT_EQ(decoded.orient.seed, 99u);
  EXPECT_EQ(decoded.methods, request.methods);
  EXPECT_EQ(decoded.threads, 4);
  EXPECT_EQ(decoded.repeats, 3);
}

TEST(ProtocolTest, QueryResponseRoundTrips) {
  QueryResponse response;
  response.num_nodes = 10;
  response.num_edges = 20;
  response.catalog_hit = true;
  response.orientation_cached = true;
  response.predicted_cost = 123.5;
  response.queue_wait_s = 0.25;
  response.stages = {{"load", 0.0}, {"list", 0.125}};
  MethodResult m;
  m.method = Method::kE1;
  m.triangles = 42;
  m.paper_ops = 1000;
  m.formula_cost = 990.5;
  m.wall_s = 0.125;
  m.parallel = true;
  response.methods.push_back(m);
  response.report_json = "{\"x\": 1}\n";

  const std::string payload = EncodeQueryResponse(response);
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, MsgType::kQueryOk);

  QueryResponse decoded;
  ASSERT_TRUE(DecodeQueryResponse(body, &decoded).ok());
  EXPECT_EQ(decoded.num_nodes, 10u);
  EXPECT_EQ(decoded.num_edges, 20u);
  EXPECT_TRUE(decoded.catalog_hit);
  EXPECT_TRUE(decoded.orientation_cached);
  EXPECT_EQ(decoded.predicted_cost, 123.5);
  EXPECT_EQ(decoded.queue_wait_s, 0.25);
  ASSERT_EQ(decoded.stages.size(), 2u);
  EXPECT_EQ(decoded.stages[1].name, "list");
  EXPECT_EQ(decoded.stages[1].wall_s, 0.125);
  ASSERT_EQ(decoded.methods.size(), 1u);
  EXPECT_EQ(decoded.methods[0].method, Method::kE1);
  EXPECT_EQ(decoded.methods[0].triangles, 42u);
  EXPECT_TRUE(decoded.methods[0].parallel);
  EXPECT_EQ(decoded.report_json, "{\"x\": 1}\n");
}

TEST(ProtocolTest, HeaderRejectsBadMagicVersionAndTruncation) {
  const std::string payload = EncodeEmpty(MsgType::kPing);
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, MsgType::kPing);

  std::string bad_magic = payload;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeHeader(bad_magic, &type, &body).ok());

  std::string bad_version = payload;
  bad_version[4] = 9;  // little-endian version word
  EXPECT_FALSE(DecodeHeader(bad_version, &type, &body).ok());

  for (size_t len = 0; len < 8; ++len) {
    EXPECT_FALSE(DecodeHeader(payload.substr(0, len), &type, &body).ok());
  }
}

TEST(ProtocolTest, BodyDecodersRejectTruncationAndTrailingBytes) {
  QueryRequest request;
  request.graph = "g";
  const std::string payload = EncodeQueryRequest(request);
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());

  QueryRequest decoded;
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeQueryRequest(body.substr(0, len), &decoded).ok())
        << "prefix length " << len;
  }
  EXPECT_FALSE(DecodeQueryRequest(body + std::string(1, '\0'), &decoded).ok());
}

TEST(ProtocolTest, RejectsOutOfRangeEnums) {
  QueryRequest request;
  request.graph = "g";
  const std::string payload = EncodeQueryRequest(request);
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());
  QueryRequest decoded;

  // Body layout: graph str, u8 order, u64 seed, u32 count, u8 methods,
  // i64 threads, i64 repeats. The single method code sits 17 bytes from
  // the end; the order code right after the 5-byte graph string.
  std::string bad_method = body;
  bad_method[bad_method.size() - 17] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeQueryRequest(bad_method, &decoded).ok());

  std::string bad_order = body;
  bad_order[5] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeQueryRequest(bad_order, &decoded).ok());
}

// ---------------------------------------------------------------------------
// Latency histogram

TEST(LatencyHistogramTest, CumulativeCountsAndQuantiles) {
  LatencyHistogram h;
  h.Observe(0.00005);  // first bucket (le 1e-4)
  h.Observe(0.0003);
  h.Observe(0.01);
  h.Observe(1e9);  // beyond the last finite bucket -> +Inf
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.CumulativeCount(0), 1u);
  EXPECT_EQ(h.CumulativeCount(LatencyHistogram::kNumFiniteBuckets), 4u);
  EXPECT_NEAR(h.Sum(), 0.00035 + 0.01 + 1e9, 1e-6 * 1e9);
  // The median upper bound sits at or above the second observation.
  EXPECT_GE(h.QuantileUpperBound(0.5), 0.0003);
  EXPECT_LE(h.QuantileUpperBound(0.25), 1e-4 + 1e-12);
}

// ---------------------------------------------------------------------------
// Server fixtures

/// Writes a small deterministic edge list: a K4 on {0..3} (4 triangles)
/// plus a pendant path so degrees are not uniform.
std::string WriteK4File(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fprintf(f, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n4 5\n");
  std::fclose(f);
  return path;
}

/// Writes a larger graph (two K6 blocks sharing no vertex, 40 triangles)
/// used as the "expensive" job in scheduling tests.
std::string WriteTwoK6File(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  for (int base : {0, 6}) {
    for (int i = 0; i < 6; ++i) {
      for (int j = i + 1; j < 6; ++j) {
        std::fprintf(f, "%d %d\n", base + i, base + j);
      }
    }
  }
  std::fclose(f);
  return path;
}

/// Starts a unix-socket server over the given named graphs. Each test
/// gets its own socket path (per-test tmpdir naming keeps parallel ctest
/// invocations from colliding).
std::unique_ptr<TriangleServer> StartUnixServer(
    const std::string& test_name,
    const std::map<std::string, std::string>& named, ServerOptions options) {
  options.unix_path = ::testing::TempDir() + "trilist_" + test_name + "_" +
                      std::to_string(::getpid()) + ".sock";
  ::unlink(options.unix_path.c_str());
  options.named_graphs = named;
  auto server = TriangleServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

ServeClient MustConnect(const TriangleServer& server) {
  auto client = ServeClient::ConnectUnix(server.unix_path());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).ValueOrDie();
}

double StageWallOf(const QueryResponse& response, const std::string& name) {
  for (const StageWall& s : response.stages) {
    if (s.name == name) return s.wall_s;
  }
  return -1;
}

// Acceptance (a): a warm-catalog query skips the load and orient stages
// (observable as zero stage walls in the response) and its triangle
// counts are bit-identical to the offline pipeline on the same spec.
TEST(ServerTest, WarmCatalogSkipsLoadAndOrientWithIdenticalCounts) {
  const std::string path = WriteK4File("warm_k4.txt");
  auto server = StartUnixServer("warm", {{"k4", path}}, ServerOptions{});

  QueryRequest request;
  request.graph = "k4";
  request.orient = OrientSpec{PermutationKind::kDescending, 1};
  request.methods = {Method::kT1, Method::kT2, Method::kE1, Method::kE4};

  ServeClient client = MustConnect(*server);
  auto cold = client.Query(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->catalog_hit);
  EXPECT_GT(StageWallOf(*cold, "load"), 0.0);

  auto warm = client.Query(request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->catalog_hit);
  EXPECT_TRUE(warm->orientation_cached);
  EXPECT_EQ(StageWallOf(*warm, "load"), 0.0);
  EXPECT_EQ(StageWallOf(*warm, "order"), 0.0);
  EXPECT_EQ(StageWallOf(*warm, "orient"), 0.0);

  // Reference counts from the offline engine on the identical spec.
  RunSpec spec;
  spec.source = GraphSource::FromFile(path);
  spec.orient = request.orient;
  spec.methods = request.methods;
  auto reference = RunPipeline(spec);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(warm->methods.size(), reference->methods.size());
  for (size_t i = 0; i < warm->methods.size(); ++i) {
    EXPECT_EQ(warm->methods[i].triangles, reference->methods[i].triangles);
    EXPECT_EQ(warm->methods[i].paper_ops,
              static_cast<double>(reference->methods[i].ops.PaperCost()));
    EXPECT_EQ(warm->methods[i].triangles, cold->methods[i].triangles);
  }
  EXPECT_EQ(warm->methods[0].triangles, 4u);  // K4 has exactly 4 triangles
}

// A paged catalog (ServerOptions::paged_catalog) serves `.tlg` graphs
// demand-paged with counts identical to the eagerly-loaded path.
TEST(ServerTest, PagedCatalogServesIdenticalCounts) {
  const std::string text = WriteK4File("paged_k4.txt");
  auto graph = ReadEdgeListFile(text);
  ASSERT_TRUE(graph.ok());
  const std::string tlg = ::testing::TempDir() + "/paged_k4.tlg";
  TlgWriteOptions wopts;
  wopts.orientations = {OrientSpec{PermutationKind::kDescending, 1}};
  ASSERT_TRUE(WriteTlgFile(*graph, tlg, wopts).ok());

  ServerOptions options;
  options.paged_catalog = true;
  auto server = StartUnixServer("paged", {{"k4", tlg}}, options);

  QueryRequest request;
  request.graph = "k4";
  request.orient = OrientSpec{PermutationKind::kDescending, 1};
  request.methods = {Method::kT1, Method::kE1};

  ServeClient client = MustConnect(*server);
  auto response = client.Query(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->orientation_cached);
  ASSERT_EQ(response->methods.size(), 2u);
  EXPECT_EQ(response->methods[0].triangles, 4u);
  EXPECT_EQ(response->methods[1].triangles, 4u);
}

// Acceptance (b): a full admission queue produces an explicit
// backpressure rejection, not a hang.
TEST(ServerTest, FullQueueRejectsWithBackpressure) {
  const std::string path = WriteK4File("busy_k4.txt");
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  options.debug_exec_delay_s = 0.5;
  auto server = StartUnixServer("busy", {{"k4", path}}, options);

  QueryRequest request;
  request.graph = "k4";

  // Saturate deterministically: send the first query and wait until the
  // worker holds it, then send the second so it lands in the single
  // queue slot (stats polling instead of fixed sleeps keeps this stable
  // under parallel ctest load). EXPECTs, not ASSERTs: the threads must
  // be joined on every exit path.
  std::atomic<int> ok_count{0};
  std::vector<std::thread> busy;
  const auto query_once = [&server, &request, &ok_count] {
    ServeClient c = MustConnect(*server);
    if (c.Query(request).ok()) ++ok_count;
  };
  busy.emplace_back(query_once);
  for (int i = 0; i < 400; ++i) {
    if (server->StatsSnapshot().in_flight >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server->StatsSnapshot().in_flight, 1u);
  busy.emplace_back(query_once);
  for (int i = 0; i < 400; ++i) {
    if (server->StatsSnapshot().requests_total >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server->StatsSnapshot().requests_total, 2u);

  ServeClient overflow = MustConnect(*server);
  auto rejected = overflow.Query(request);
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(overflow.last_failure_was_reply());
  EXPECT_EQ(overflow.last_error().code, ErrorCode::kOverloaded);

  for (std::thread& t : busy) t.join();
  EXPECT_EQ(ok_count.load(), 2);
  const ServerStats stats = server->StatsSnapshot();
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.responses_ok, 2u);
}

// Acceptance (c), in-process half: BeginDrain finishes the in-flight
// request, refuses new ones, and Wait() returns with all threads joined
// (the shell test covers the SIGTERM + exit-code half).
TEST(ServerTest, DrainFinishesInFlightAndRefusesNew) {
  const std::string path = WriteK4File("drain_k4.txt");
  ServerOptions options;
  options.workers = 1;
  options.debug_exec_delay_s = 0.2;
  auto server = StartUnixServer("drain", {{"k4", path}}, options);

  QueryRequest request;
  request.graph = "k4";

  std::atomic<bool> in_flight_ok{false};
  std::thread in_flight([&server, &request, &in_flight_ok] {
    ServeClient c = MustConnect(*server);
    in_flight_ok = c.Query(request).ok();
  });
  // A second connection opened before the drain begins: its query must
  // be refused with kDraining once the drain starts.
  ServeClient late = MustConnect(*server);
  for (int i = 0; i < 200; ++i) {
    if (server->StatsSnapshot().requests_total >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server->StatsSnapshot().requests_total, 1u);

  server->BeginDrain();
  auto refused = late.Query(request);
  EXPECT_FALSE(refused.ok());
  if (late.last_failure_was_reply()) {
    EXPECT_EQ(late.last_error().code, ErrorCode::kDraining);
  }

  server->Wait();
  in_flight.join();
  EXPECT_TRUE(in_flight_ok.load());
  const ServerStats stats = server->StatsSnapshot();
  EXPECT_EQ(stats.responses_ok, 1u);
}

TEST(ServerTest, StatsExposeQueueCatalogAndLatency) {
  const std::string path = WriteK4File("stats_k4.txt");
  auto server = StartUnixServer("stats", {{"k4", path}}, ServerOptions{});

  ServeClient client = MustConnect(*server);
  QueryRequest request;
  request.graph = "k4";
  ASSERT_TRUE(client.Query(request).ok());
  ASSERT_TRUE(client.Query(request).ok());
  ASSERT_TRUE(client.Ping().ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::string& text = *stats;
  EXPECT_NE(text.find("trilist_serve_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("trilist_serve_responses_ok_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("trilist_serve_catalog_loads_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("trilist_serve_catalog_hits_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("trilist_serve_rejected_total{reason=\"overload\"} 0"),
            std::string::npos);
  // Histogram convention: cumulative buckets, then sum and count.
  EXPECT_NE(text.find("# TYPE trilist_serve_request_latency_seconds "
                      "histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("trilist_serve_request_latency_seconds_bucket{le=\"+Inf\"} "
                "2"),
      std::string::npos);
  EXPECT_NE(text.find("trilist_serve_request_latency_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("trilist_serve_method_wall_seconds_count{method=\"E1\"} 2"),
      std::string::npos);
}

TEST(ServerTest, LruEvictionKeepsCapacityAndInFlightSafety) {
  const std::string k4 = WriteK4File("lru_k4.txt");
  const std::string k6 = WriteTwoK6File("lru_k6.txt");
  ServerOptions options;
  options.catalog_capacity = 1;
  auto server =
      StartUnixServer("lru", {{"k4", k4}, {"k6", k6}}, options);

  ServeClient client = MustConnect(*server);
  QueryRequest request;
  for (const char* name : {"k4", "k6", "k4", "k6"}) {
    request.graph = name;
    auto response = client.Query(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->catalog_hit);  // capacity 1 evicts every swap
  }
  const ServerStats stats = server->StatsSnapshot();
  EXPECT_EQ(stats.catalog.resident, 1u);
  EXPECT_EQ(stats.catalog.loads, 4u);
  EXPECT_EQ(stats.catalog.evictions, 3u);
}

/// Open descriptors of this process (0 when /proc is unavailable).
size_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

/// Polls the stats snapshot until `predicate` holds (or ~2 s elapse).
template <typename Predicate>
bool WaitForStats(const TriangleServer& server, Predicate predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate(server.StatsSnapshot())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// Regression: a long-running daemon under connection churn must reclaim
// each connection's fd, registry entry and reader thread when the client
// disconnects — not hold them until shutdown (which exhausts
// RLIMIT_NOFILE under e.g. a per-scrape monitoring poller).
TEST(ServerTest, ConnectionChurnReclaimsFdsAndRegistryEntries) {
  const std::string path = WriteK4File("churn_k4.txt");
  auto server = StartUnixServer("churn", {{"k4", path}}, ServerOptions{});

  QueryRequest request;
  request.graph = "k4";
  {
    // Warm the catalog so churn below measures connection cost only.
    ServeClient warmup = MustConnect(*server);
    ASSERT_TRUE(warmup.Query(request).ok());
  }
  ASSERT_TRUE(WaitForStats(*server, [](const ServerStats& s) {
    return s.open_connections == 0;
  }));

  const size_t fds_before = CountOpenFds();
  constexpr int kChurn = 32;
  for (int i = 0; i < kChurn; ++i) {
    ServeClient client = MustConnect(*server);
    EXPECT_TRUE(client.Ping().ok());
    // Every fourth connection also runs a query, so reclamation is
    // exercised on the worker reply path, not just the reader path.
    if (i % 4 == 0) {
      EXPECT_TRUE(client.Query(request).ok());
    }
    // ~ServeClient closes the socket: the server sees EOF and reclaims.
  }
  EXPECT_TRUE(WaitForStats(*server, [](const ServerStats& s) {
    return s.open_connections == 0;
  }));
  EXPECT_EQ(server->StatsSnapshot().accepted_connections,
            static_cast<uint64_t>(kChurn) + 1);
  if (fds_before != 0) {
    // No fd growth proportional to churn (slack for transient state).
    EXPECT_LE(CountOpenFds(), fds_before + 2);
  }
}

// Regression: a client that sends queries but never reads its responses
// must not wedge the replying thread forever — SO_SNDTIMEO fails the
// blocked send, the connection is reclaimed, and drain still completes.
TEST(ServerTest, SlowReaderTimesOutAndIsReclaimed) {
  const std::string path = WriteK4File("slow_k4.txt");
  ServerOptions options;
  options.send_timeout_s = 0.2;
  auto server = StartUnixServer("slow", {{"k4", path}}, options);

  Result<int> fd = ConnectUnix(server->unix_path());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ::fcntl(*fd, F_SETFL, O_NONBLOCK);

  // One raw ping frame: u32 little-endian length prefix + payload.
  const std::string payload = EncodeEmpty(MsgType::kPing);
  std::string frame;
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<char>((length >> shift) & 0xff));
  }
  frame += payload;

  // Spam pings while reading nothing: pong replies back up until the
  // server's send blocks past the timeout, after which it marks the
  // connection dead and shuts it down — observed here as a send failure
  // (EPIPE/ECONNRESET) on our side.
  bool server_gave_up = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t sent =
        ::send(*fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    if (sent >= 0) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    server_gave_up = true;
    break;
  }
  EXPECT_TRUE(server_gave_up);
  EXPECT_TRUE(WaitForStats(*server, [](const ServerStats& s) {
    return s.open_connections == 0;
  }));
  CloseFd(*fd);

  // The old blocking send held Wait() hostage forever here.
  server->BeginDrain();
  server->Wait();
}

// Regression: a socket file left behind by a crashed/SIGKILLed daemon
// must not make the next start fail with EADDRINUSE; a live listener's
// path must still be protected.
TEST(NetTest, StaleUnixSocketIsRecoveredButLiveOneIsProtected) {
  const std::string path = ::testing::TempDir() + "trilist_stale_" +
                           std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());

  // Crash simulation: bind, then drop the listener without unlinking.
  Result<Listener> first = ListenUnix(path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  CloseFd(first->fd);

  Result<Listener> second = ListenUnix(path);
  EXPECT_TRUE(second.ok()) << second.status().ToString();

  Result<Listener> third = ListenUnix(path);
  EXPECT_FALSE(third.ok());

  if (second.ok()) CloseFd(second->fd);
  ::unlink(path.c_str());
}

TEST(ServerTest, UnknownGraphIsNotFound) {
  const std::string path = WriteK4File("nf_k4.txt");
  auto server = StartUnixServer("notfound", {{"k4", path}}, ServerOptions{});
  ServeClient client = MustConnect(*server);

  QueryRequest request;
  request.graph = "no-such-graph";
  auto response = client.Query(request);
  EXPECT_FALSE(response.ok());
  ASSERT_TRUE(client.last_failure_was_reply());
  EXPECT_EQ(client.last_error().code, ErrorCode::kNotFound);

  // Path traversal attempts are rejected, not resolved.
  request.graph = "../etc/passwd";
  response = client.Query(request);
  EXPECT_FALSE(response.ok());
  ASSERT_TRUE(client.last_failure_was_reply());
  EXPECT_EQ(client.last_error().code, ErrorCode::kNotFound);
}

TEST(ServerTest, TcpEphemeralPortServes) {
  const std::string path = WriteK4File("tcp_k4.txt");
  ServerOptions options;
  options.tcp = true;
  options.port = 0;  // ephemeral: parallel test runs never collide
  options.named_graphs = {{"k4", path}};
  auto server = TriangleServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_NE((*server)->tcp_port(), 0);

  auto client = ServeClient::ConnectTcp("127.0.0.1", (*server)->tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client.ValueOrDie().Ping().ok());
  QueryRequest request;
  request.graph = "k4";
  auto response = client.ValueOrDie().Query(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->methods[0].triangles, 4u);
}

TEST(ServerTest, ShortestJobFirstPrefersCheaperRequest) {
  const std::string k4 = WriteK4File("sjf_k4.txt");
  const std::string k6 = WriteTwoK6File("sjf_k6.txt");
  ServerOptions options;
  options.workers = 1;
  options.shortest_job_first = true;
  options.debug_exec_delay_s = 0.25;
  auto server = StartUnixServer("sjf", {{"k4", k4}, {"k6", k6}}, options);

  // Warm both graphs so scheduling-phase acquires are instant.
  {
    ServeClient warmup = MustConnect(*server);
    QueryRequest request;
    request.graph = "k4";
    ASSERT_TRUE(warmup.Query(request).ok());
    request.graph = "k6";
    ASSERT_TRUE(warmup.Query(request).ok());
  }

  // Stats polling sequences the admissions deterministically: the
  // blocker must be executing before the costly job is queued, and the
  // costly job queued before the cheap one arrives.
  const auto wait_for = [&server](auto predicate) {
    for (int i = 0; i < 400; ++i) {
      if (predicate(server->StatsSnapshot())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  using Clock = std::chrono::steady_clock;
  Clock::time_point cheap_done, costly_done;
  std::thread blocker([&server] {
    ServeClient c = MustConnect(*server);
    QueryRequest request;
    request.graph = "k4";
    EXPECT_TRUE(c.Query(request).ok());
  });
  EXPECT_TRUE(
      wait_for([](const ServerStats& s) { return s.in_flight >= 1; }));
  // While the blocker executes, enqueue the costly job first, then the
  // cheap one: SJF must run the cheap one ahead of it anyway.
  std::thread costly([&server, &costly_done] {
    ServeClient c = MustConnect(*server);
    QueryRequest request;
    request.graph = "k6";  // larger graph => larger Section-3 estimate
    EXPECT_TRUE(c.Query(request).ok());
    costly_done = Clock::now();
  });
  EXPECT_TRUE(
      wait_for([](const ServerStats& s) { return s.queue_depth >= 1; }));
  std::thread cheap([&server, &cheap_done] {
    ServeClient c = MustConnect(*server);
    QueryRequest request;
    request.graph = "k4";
    EXPECT_TRUE(c.Query(request).ok());
    cheap_done = Clock::now();
  });

  blocker.join();
  costly.join();
  cheap.join();
  EXPECT_LT(cheap_done.time_since_epoch().count(),
            costly_done.time_since_epoch().count());
}

// ---------------------------------------------------------------------------
// Catalog unit coverage (no sockets)

TEST(CatalogTest, PredictedCostGrowsWithGraphAndMethodSet) {
  const std::string k4 = WriteK4File("cost_k4.txt");
  const std::string k6 = WriteTwoK6File("cost_k6.txt");
  CatalogOptions options;
  options.named = {{"k4", k4}, {"k6", k6}};
  GraphCatalog catalog(options);

  ErrorCode code;
  auto small = catalog.Acquire("k4", &code);
  auto large = catalog.Acquire("k6", &code);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());

  const OrientSpec spec{PermutationKind::kDescending, 1};
  const auto price = [](const GraphCatalog::Acquired& a,
                        const OrientSpec& s,
                        const std::vector<Method>& methods) {
    return a.entry->cost_model().PredictedTotalCost(
        s, methods, IntersectBackend::kMerge);
  };
  const double small_cost = price(*small, spec, {Method::kE1});
  const double large_cost = price(*large, spec, {Method::kE1});
  EXPECT_GT(small_cost, 0);
  EXPECT_GT(large_cost, small_cost);

  const double two_methods = price(*small, spec, {Method::kE1, Method::kT1});
  EXPECT_GT(two_methods, small_cost);
  // Memoized: asking again returns the identical value.
  EXPECT_EQ(small_cost, price(*small, spec, {Method::kE1}));
}

// Regression: serve-time orientations are O(n + m) each and keyed by
// OrientSpec (every uniform seed distinct), so the per-entry cache must
// be a bounded LRU — a seed-sweeping client must not grow resident
// memory without limit.
TEST(CatalogTest, OrientationCacheIsBoundedLru) {
  const std::string k4 = WriteK4File("lrucap_k4.txt");
  CatalogOptions options;
  options.named = {{"k4", k4}};
  GraphCatalog catalog(options);

  ErrorCode code;
  auto acquired = catalog.Acquire("k4", &code);
  ASSERT_TRUE(acquired.ok());
  const auto orient = [&](uint64_t seed) {
    return catalog.Orient(acquired->entry,
                          OrientSpec{PermutationKind::kUniform, seed}, 1);
  };

  const uint64_t cap = CatalogEntry::kMaxCachedOrientations;
  for (uint64_t seed = 1; seed <= cap; ++seed) {
    EXPECT_FALSE(orient(seed).cached);
  }
  EXPECT_EQ(catalog.StatsSnapshot().orientations_built, cap);

  EXPECT_TRUE(orient(cap).cached);       // still resident
  EXPECT_FALSE(orient(cap + 1).cached);  // evicts the coldest (seed 1)
  EXPECT_TRUE(orient(cap).cached);       // the hit above kept it warm
  EXPECT_FALSE(orient(1).cached);        // seed 1 was evicted, rebuilds

  const CatalogStats stats = catalog.StatsSnapshot();
  EXPECT_EQ(stats.orientations_built, cap + 2);
  EXPECT_EQ(stats.orientation_hits, 2u);
}

TEST(CatalogTest, EvictedEntryStaysUsableThroughHeldReference) {
  const std::string k4 = WriteK4File("pin_k4.txt");
  const std::string k6 = WriteTwoK6File("pin_k6.txt");
  CatalogOptions options;
  options.capacity = 1;
  options.named = {{"k4", k4}, {"k6", k6}};
  GraphCatalog catalog(options);

  ErrorCode code;
  auto held = catalog.Acquire("k4", &code);
  ASSERT_TRUE(held.ok());
  // Loading the second graph evicts k4 from the registry...
  ASSERT_TRUE(catalog.Acquire("k6", &code).ok());
  EXPECT_EQ(catalog.StatsSnapshot().evictions, 1u);
  // ...but the held reference still reads valid graph data.
  EXPECT_EQ(held->entry->graph().num_nodes(), 6u);
  EXPECT_EQ(held->entry->graph().num_edges(), 8u);
  const auto oriented = catalog.Orient(
      held->entry, OrientSpec{PermutationKind::kDescending, 1}, 1);
  EXPECT_EQ(oriented.oriented.num_nodes(), 6u);
}

}  // namespace
}  // namespace trilist::serve
