#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/util/build_info.h"

namespace trilist::obs {
namespace {

/// Every test owns the whole tracer session (the tracer is a process
/// singleton): start from a clean, disabled state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Disable();
    Tracer::Clear();
  }
  void TearDown() override {
    Tracer::Disable();
    Tracer::Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Tracer::Enabled());
  {
    TraceSpan span("ignored");
    span.Arg("k", int64_t{1});
  }
  EXPECT_EQ(Tracer::EventCount(), 0u);
  EXPECT_EQ(Tracer::DroppedCount(), 0u);
}

TEST_F(TraceTest, EnabledSpanIsRecordedWithArgs) {
  Tracer::Enable();
  {
    TraceSpan span("listing");
    span.Arg("method", "T1");
    span.Arg("ops", int64_t{12345});
  }
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(), 1u);
  const std::string json = Tracer::ToChromeJson();
  EXPECT_NE(json.find("\"name\": \"listing\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"T1\""), std::string::npos);
  EXPECT_NE(json.find("\"ops\": 12345"), std::string::npos);
}

TEST_F(TraceTest, MacroTracesEnclosingScope) {
  Tracer::Enable();
  {
    TRILIST_TRACE_SPAN("outer");
    TRILIST_TRACE_SPAN("inner");
  }
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(), 2u);
}

TEST_F(TraceTest, SpansOpenedBeforeEnableAreNotRecorded) {
  TraceSpan span("preexisting");
  Tracer::Enable();
  EXPECT_EQ(Tracer::EventCount(), 0u);
}

// The Chrome trace-event contract: what Perfetto actually requires from
// the document. Event bodies are rendered deterministically, so the shape
// can be checked byte-for-byte on a synthetic event.
TEST_F(TraceTest, ChromeJsonStructureIsGolden) {
  TraceEvent e;
  e.name = "chunk";
  e.start_ns = 1500;    // 1.5 us
  e.dur_ns = 2250;      // 2.25 us
  e.num_args = 2;
  e.args[0] = TraceArg{"shard", nullptr, 7};
  e.args[1] = TraceArg{"method", "E1", 0};
  Tracer::AppendForTest(e);

  const std::string json = Tracer::ToChromeJson();
  // Document frame.
  EXPECT_EQ(json.find("{\n  \"displayTimeUnit\": \"ms\","), 0u);
  EXPECT_NE(json.find("\"otherData\": {"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  // Provenance rides along in otherData.
  const BuildInfo& build = GetBuildInfo();
  EXPECT_NE(json.find(std::string("\"git_hash\": \"") + build.git_hash),
            std::string::npos);
  // The event body itself is byte-stable.
  const std::string expected_event =
      "    {\n"
      "      \"name\": \"chunk\",\n"
      "      \"cat\": \"trilist\",\n"
      "      \"ph\": \"X\",\n"
      "      \"pid\": 1,\n"
      "      \"tid\": 0,\n"
      "      \"ts\": 1.500,\n"
      "      \"dur\": 2.250,\n"
      "      \"args\": {\n"
      "        \"shard\": 7,\n"
      "        \"method\": \"E1\"\n"
      "      }\n"
      "    }\n";
  EXPECT_NE(json.find(expected_event), std::string::npos) << json;
}

TEST_F(TraceTest, OverflowDropsInsteadOfBlocking) {
  Tracer::Enable();
  for (size_t i = 0; i < Tracer::kEventsPerThread + 10; ++i) {
    TraceSpan span("flood");
  }
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(), Tracer::kEventsPerThread);
  EXPECT_EQ(Tracer::DroppedCount(), 10u);
  const std::string json = Tracer::ToChromeJson();
  EXPECT_NE(json.find("\"dropped_events\": 10"), std::string::npos);
}

TEST_F(TraceTest, ClearResetsEventsAndDrops) {
  Tracer::Enable();
  for (size_t i = 0; i < Tracer::kEventsPerThread + 5; ++i) {
    TraceSpan span("flood");
  }
  Tracer::Disable();
  ASSERT_GT(Tracer::EventCount(), 0u);
  ASSERT_GT(Tracer::DroppedCount(), 0u);
  Tracer::Clear();
  EXPECT_EQ(Tracer::EventCount(), 0u);
  EXPECT_EQ(Tracer::DroppedCount(), 0u);
  // The buffers stay registered and usable after Clear.
  Tracer::Enable();
  { TraceSpan span("after_clear"); }
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(), 1u);
}

TEST_F(TraceTest, EachThreadRecordsIntoItsOwnBuffer) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  Tracer::Enable();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker");
        span.Arg("i", static_cast<int64_t>(i));
      }
    });
  }
  { TraceSpan span("main"); }
  for (std::thread& w : workers) w.join();
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(),
            static_cast<size_t>(kThreads) * kSpansPerThread + 1);
  EXPECT_EQ(Tracer::DroppedCount(), 0u);
}

TEST_F(TraceTest, WriteChromeJsonRoundTrips) {
  Tracer::Enable();
  { TraceSpan span("written"); }
  Tracer::Disable();
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.json";
  ASSERT_TRUE(Tracer::WriteChromeJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  EXPECT_EQ(content, Tracer::ToChromeJson());
  EXPECT_FALSE(
      Tracer::WriteChromeJson("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace trilist::obs
