#include "src/graph/binfmt_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "src/gen/erdos_renyi.h"
#include "src/graph/binfmt.h"
#include "src/graph/binfmt_layout.h"
#include "src/graph/graph.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<unsigned char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

Graph SampleGraph() {
  Rng rng(99);
  return GenerateGnp(300, 0.04, &rng);
}

/// Writes `path` through the stream writer by replaying the payload
/// bytes of an existing in-memory-written container `ref_path`,
/// appending in deliberately awkward 7-byte chunks so the test crosses
/// both buffer and section boundaries.
Status StreamCopy(const std::string& ref_path, const std::string& path,
                  const TlgStreamWriterOptions& options = {}) {
  auto ref = TlgFile::Open(ref_path);
  if (!ref.ok()) return ref.status();
  const std::vector<unsigned char> bytes = Slurp(ref_path);
  std::vector<TlgStreamSectionPlan> plan;
  for (const TlgFile::SectionInfo& s : ref->sections()) {
    plan.push_back({s.type, s.aux, s.length});
  }
  auto created = TlgStreamWriter::Create(
      path, ref->graph().num_nodes(), ref->graph().num_edges(), plan,
      options);
  if (!created.ok()) return created.status();
  TlgStreamWriter& writer = created.ValueOrDie();
  for (const TlgFile::SectionInfo& s : ref->sections()) {
    uint64_t done = 0;
    while (done < s.length) {
      const uint64_t take = std::min<uint64_t>(7, s.length - done);
      TRILIST_RETURN_NOT_OK(
          writer.Append(bytes.data() + s.offset + done, take));
      done += take;
    }
  }
  return writer.Finish();
}

TEST(BinfmtStreamTest, ByteIdenticalToInMemoryWriter) {
  const Graph g = SampleGraph();
  const std::string ref_path = TempPath("stream_ref.tlg");
  const std::string out_path = TempPath("stream_out.tlg");
  TlgWriteOptions opts;
  opts.orientations = {OrientSpec{PermutationKind::kDescending, 0},
                       OrientSpec{PermutationKind::kUniform, 42}};
  ASSERT_TRUE(WriteTlgFile(g, ref_path, opts).ok());
  ASSERT_TRUE(StreamCopy(ref_path, out_path).ok());
  EXPECT_EQ(Slurp(ref_path), Slurp(out_path));
  auto reopened = TlgFile::Open(out_path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->graph().num_edges(), g.num_edges());
}

TEST(BinfmtStreamTest, ShortWriteLeavesNoValidFile) {
  const Graph g = SampleGraph();
  const std::string ref_path = TempPath("stream_ref2.tlg");
  const std::string out_path = TempPath("stream_fail.tlg");
  ASSERT_TRUE(WriteTlgFile(g, ref_path).ok());
  TlgStreamWriterOptions options;
  options.debug_fail_after_bytes = 4096;  // dies mid-payload
  const Status st = StreamCopy(ref_path, out_path, options);
  EXPECT_FALSE(st.ok());
  // The magic is written last (at Finish), so the aborted file can
  // never open as a half-valid graph.
  EXPECT_FALSE(TlgFile::Open(out_path).ok());
}

TEST(BinfmtStreamTest, AbandonedWriterLeavesNoValidFile) {
  const std::string out_path = TempPath("stream_abandon.tlg");
  {
    std::vector<TlgStreamSectionPlan> plan = {
        {tlg::kSecCsrOffsets, 0, 16}};
    auto created = TlgStreamWriter::Create(out_path, 1, 0, plan);
    ASSERT_TRUE(created.ok());
    const uint64_t offsets[2] = {0, 0};
    ASSERT_TRUE(created.ValueOrDie().Append(offsets, sizeof(offsets)).ok());
    // Writer destroyed without Finish: simulated kill mid-write.
  }
  EXPECT_FALSE(TlgFile::Open(out_path).ok());
}

TEST(BinfmtStreamTest, FinishRequiresCompletePayload) {
  const std::string out_path = TempPath("stream_incomplete.tlg");
  std::vector<TlgStreamSectionPlan> plan = {{tlg::kSecCsrOffsets, 0, 16}};
  auto created = TlgStreamWriter::Create(out_path, 1, 0, plan);
  ASSERT_TRUE(created.ok());
  TlgStreamWriter& writer = created.ValueOrDie();
  const uint64_t half = 0;
  ASSERT_TRUE(writer.Append(&half, sizeof(half)).ok());
  EXPECT_FALSE(writer.Finish().ok());
  EXPECT_FALSE(TlgFile::Open(out_path).ok());
}

TEST(BinfmtStreamTest, OverAppendFails) {
  const std::string out_path = TempPath("stream_over.tlg");
  std::vector<TlgStreamSectionPlan> plan = {{tlg::kSecCsrOffsets, 0, 8}};
  auto created = TlgStreamWriter::Create(out_path, 1, 0, plan);
  ASSERT_TRUE(created.ok());
  const uint64_t word[2] = {0, 0};
  EXPECT_FALSE(created.ValueOrDie().Append(word, sizeof(word)).ok());
}

TEST(BinfmtStreamTest, DiskFullSurfacesAsStatusNotCrash) {
  // Simulate a full disk with RLIMIT_FSIZE: writes past the cap fail
  // with EFBIG once SIGXFSZ is ignored. The writer must surface a
  // Status, and the abandoned file must not open.
  const Graph g = SampleGraph();
  const std::string ref_path = TempPath("stream_ref3.tlg");
  const std::string out_path = TempPath("stream_enospc.tlg");
  ASSERT_TRUE(WriteTlgFile(g, ref_path).ok());

  struct sigaction ignore = {};
  ignore.sa_handler = SIG_IGN;
  struct sigaction saved_action = {};
  ASSERT_EQ(::sigaction(SIGXFSZ, &ignore, &saved_action), 0);
  struct rlimit saved_limit = {};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &saved_limit), 0);
  struct rlimit capped = saved_limit;
  capped.rlim_cur = 8192;  // smaller than the container
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &capped), 0);

  const Status st = StreamCopy(ref_path, out_path);

  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &saved_limit), 0);
  ASSERT_EQ(::sigaction(SIGXFSZ, &saved_action, nullptr), 0);

  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(TlgFile::Open(out_path).ok());
}

TEST(BinfmtStreamTest, TruncationAfterFinishIsCaughtByLoader) {
  const Graph g = SampleGraph();
  const std::string ref_path = TempPath("stream_ref4.tlg");
  const std::string out_path = TempPath("stream_trunc.tlg");
  ASSERT_TRUE(WriteTlgFile(g, ref_path).ok());
  ASSERT_TRUE(StreamCopy(ref_path, out_path).ok());
  const std::vector<unsigned char> bytes = Slurp(out_path);
  ASSERT_GT(bytes.size(), 100u);
  ASSERT_EQ(::truncate(out_path.c_str(),
                       static_cast<off_t>(bytes.size() - 64)),
            0);
  EXPECT_FALSE(TlgFile::Open(out_path).ok());
}

}  // namespace
}  // namespace trilist
