#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/dyn/compact.h"
#include "src/dyn/dyn_graph.h"
#include "src/dyn/mutation_log.h"
#include "src/dyn/overlay.h"
#include "src/dyn/replay.h"
#include "src/graph/binfmt.h"
#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace trilist::dyn {
namespace {

using Edge = std::pair<NodeId, NodeId>;

Edge Canon(NodeId u, NodeId v) { return u < v ? Edge{u, v} : Edge{v, u}; }

/// A reference dynamic graph: a plain edge set mutated alongside the
/// DynGraph under test, rebuilt into a Graph on demand.
struct EdgeSetModel {
  std::set<Edge> edges;
  size_t num_nodes = 0;

  void Apply(const EdgeMutation& m) {
    num_nodes = std::max({num_nodes, size_t{m.u} + 1, size_t{m.v} + 1});
    if (m.insert) {
      edges.insert(Canon(m.u, m.v));
    } else {
      edges.erase(Canon(m.u, m.v));
    }
  }

  Graph Build() const {
    std::vector<Edge> list(edges.begin(), edges.end());
    auto g = Graph::FromEdges(num_nodes, list);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return g.ValueOrDie();
  }
};

/// Brute-force triangle count over an edge set (reference for the
/// incremental invariant; O(m * n), fine at test sizes).
uint64_t BruteTriangles(const Graph& g) {
  uint64_t count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u) continue;
      for (NodeId w : g.Neighbors(v)) {
        if (w <= v) continue;
        if (g.HasEdge(u, w)) ++count;
      }
    }
  }
  return count;
}

Graph K4PlusPath() {
  // K4 on {0..3} (4 triangles) plus the pendant path 3-4-5.
  auto g = Graph::FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_TRUE(g.ok());
  return g.ValueOrDie();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "trilist_dyn_" + std::to_string(::getpid()) +
         "_" + name;
}

// ---------------------------------------------------------------------------
// Mutation log format

TEST(MutationLogTest, RoundTripsAndSkipsComments) {
  const std::string path = TempPath("log_roundtrip.txt");
  const std::vector<EdgeMutation> log = {
      {0, 1, true}, {2, 7, true}, {0, 1, false}, {5, 3, true}};
  ASSERT_TRUE(WriteMutationLog(log, path).ok());

  auto read = ReadMutationLog(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, log);

  // Comments and blank lines are skipped wherever they appear.
  {
    std::ofstream out(path, std::ios::app);
    out << "\n# trailing comment\n+ 8 9\n";
  }
  read = ReadMutationLog(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), log.size() + 1);
  EXPECT_EQ(read->back(), (EdgeMutation{8, 9, true}));
  ::unlink(path.c_str());
}

TEST(MutationLogTest, RejectsMalformedLinesNamingTheLine) {
  const std::string path = TempPath("log_malformed.txt");
  const auto expect_rejects = [&](const std::string& text,
                                  const std::string& line_tag) {
    std::ofstream(path) << text;
    auto read = ReadMutationLog(path);
    ASSERT_FALSE(read.ok()) << "accepted: " << text;
    EXPECT_NE(read.status().ToString().find(line_tag), std::string::npos)
        << read.status().ToString();
  };
  expect_rejects("+ 0 1\n* 2 3\n", "line 2");     // unknown op
  expect_rejects("+ 0\n", "line 1");              // missing endpoint
  expect_rejects("+ 4 4\n", "line 1");            // self-loop
  expect_rejects("+ 0 1\n\n- x 2\n", "line 3");   // non-digit endpoint
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Overlay merge

TEST(OverlayTest, UntouchedRowIsZeroCopy)
{
  DeltaOverlay overlay;
  const std::vector<NodeId> base = {2, 5, 9};
  std::vector<NodeId> scratch;
  const auto row = overlay.MergedRow(base, 0, &scratch);
  // Same storage, not a copy: the common case under sparse churn.
  EXPECT_EQ(row.data(), base.data());
  EXPECT_TRUE(overlay.empty());
}

TEST(OverlayTest, MergesInsertsAndTombstonesSorted) {
  DeltaOverlay overlay;
  const std::vector<NodeId> base = {2, 5, 9};
  overlay.AddArc(0, 7);   // new arc interleaves between base entries
  overlay.AddArc(0, 1);   // new arc below every base entry
  overlay.RemoveArc(0, 5);  // tombstone a base arc

  std::vector<NodeId> scratch;
  const auto row = overlay.MergedRow(base, 0, &scratch);
  EXPECT_EQ(std::vector<NodeId>(row.begin(), row.end()),
            (std::vector<NodeId>{1, 2, 7, 9}));
  EXPECT_EQ(overlay.DegreeDelta(0), 1);  // +2 inserted, -1 tombstoned
  EXPECT_EQ(overlay.delta_arcs(), 3u);

  // Re-adding the tombstoned base arc clears the tombstone instead of
  // duplicating it in the inserted list.
  overlay.AddArc(0, 5);
  EXPECT_FALSE(overlay.HasDeleted(0, 5));
  EXPECT_FALSE(overlay.HasInserted(0, 5));
  const auto restored = overlay.MergedRow(base, 0, &scratch);
  EXPECT_EQ(std::vector<NodeId>(restored.begin(), restored.end()),
            (std::vector<NodeId>{1, 2, 5, 7, 9}));
}

TEST(OverlayTest, PrunesNodeOnceDeltasCancel) {
  DeltaOverlay overlay;
  overlay.AddArc(3, 8);
  EXPECT_NE(overlay.Find(3), nullptr);
  overlay.RemoveArc(3, 8);  // removes from inserted, not a tombstone
  EXPECT_EQ(overlay.Find(3), nullptr) << "cancelled row must be pruned";
  EXPECT_TRUE(overlay.empty());
}

// ---------------------------------------------------------------------------
// DynGraph incremental maintenance

TEST(DynGraphTest, MaintainsExactCountThroughInsertsAndDeletes) {
  DynGraph dyn = DynGraph::FromBase(K4PlusPath());
  EXPECT_EQ(dyn.triangles(), 4u);
  EXPECT_EQ(dyn.num_edges(), 8u);

  // Closing the wedge 3-4-5 adds exactly one triangle.
  auto r = dyn.Apply(std::vector<EdgeMutation>{{3, 5, true}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().applied_inserts, 1u);
  EXPECT_EQ(dyn.triangles(), 5u);

  // Deleting a K4 edge removes the two triangles it supported.
  r = dyn.Apply(std::vector<EdgeMutation>{{0, 1, false}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().applied_deletes, 1u);
  EXPECT_EQ(dyn.triangles(), 3u);
  EXPECT_EQ(dyn.num_edges(), 8u);

  // The maintained count always equals a from-scratch count.
  EXPECT_EQ(dyn.triangles(), CountTriangles(dyn.MaterializeGraph()));
}

TEST(DynGraphTest, NoopsLeaveStateUntouched) {
  DynGraph dyn = DynGraph::FromBase(K4PlusPath());
  const uint64_t t = dyn.triangles();
  const uint64_t m = dyn.num_edges();

  auto r = dyn.Apply(std::vector<EdgeMutation>{
      {0, 1, true},    // already present
      {2, 5, false},   // already absent
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().noops, 2u);
  EXPECT_EQ(r.ValueOrDie().applied_inserts, 0u);
  EXPECT_EQ(dyn.triangles(), t);
  EXPECT_EQ(dyn.num_edges(), m);
  EXPECT_EQ(dyn.overlay_arcs(), 0u);
}

TEST(DynGraphTest, SelfLoopFailsTheWholeBatchAtomically) {
  DynGraph dyn = DynGraph::FromBase(K4PlusPath());
  const uint64_t t = dyn.triangles();
  const uint64_t m = dyn.num_edges();
  const uint64_t seq = dyn.seq();

  auto r = dyn.Apply(std::vector<EdgeMutation>{{3, 5, true}, {4, 4, true}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Nothing from the batch landed — not even the valid prefix.
  EXPECT_EQ(dyn.triangles(), t);
  EXPECT_EQ(dyn.num_edges(), m);
  EXPECT_EQ(dyn.seq(), seq);
  EXPECT_EQ(dyn.overlay_arcs(), 0u);
}

TEST(DynGraphTest, InsertBeyondBaseGrowsTheNodeSet) {
  DynGraph dyn = DynGraph::FromBase(K4PlusPath());
  ASSERT_EQ(dyn.num_nodes(), 6u);

  auto r = dyn.Apply(std::vector<EdgeMutation>{{5, 9, true}, {9, 0, true}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(dyn.num_nodes(), 10u);
  EXPECT_EQ(dyn.Degree(9), 2);
  EXPECT_TRUE(dyn.HasEdge(9, 5));
  EXPECT_TRUE(dyn.HasEdge(0, 9));

  const Graph g = dyn.MaterializeGraph();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(dyn.triangles(), CountTriangles(g));
}

TEST(DynGraphTest, PropertyRandomChurnMatchesRebuiltGraph) {
  // Random mutation stream over a small ID range (lots of collisions,
  // noops, deletes of inserted-then-removed edges) — after every batch
  // the dynamic view must be indistinguishable from a graph rebuilt
  // from the surviving edge set.
  Rng rng(20170514);
  const int kNodes = 24;

  Graph base = [&] {
    std::vector<Edge> edges;
    for (NodeId u = 0; u < kNodes; ++u) {
      for (NodeId v = u + 1; v < kNodes; ++v) {
        if (rng.NextDouble() < 0.15) edges.emplace_back(u, v);
      }
    }
    auto g = Graph::FromEdges(kNodes, edges);
    EXPECT_TRUE(g.ok());
    return g.ValueOrDie();
  }();

  EdgeSetModel model;
  model.num_nodes = kNodes;
  for (const auto& [u, v] : base.EdgeList()) model.edges.insert(Canon(u, v));

  DynGraph dyn = DynGraph::FromBase(base);
  ASSERT_EQ(dyn.triangles(), BruteTriangles(base));

  std::vector<NodeId> scratch;
  for (int batch = 0; batch < 12; ++batch) {
    std::vector<EdgeMutation> ops;
    for (int i = 0; i < 40; ++i) {
      EdgeMutation m;
      m.u = static_cast<NodeId>(rng.NextBounded(kNodes));
      do {
        m.v = static_cast<NodeId>(rng.NextBounded(kNodes));
      } while (m.v == m.u);
      m.insert = rng.NextDouble() < 0.6;
      ops.push_back(m);
      model.Apply(m);
    }
    ASSERT_TRUE(dyn.Apply(ops).ok());

    const Graph want = model.Build();
    ASSERT_EQ(dyn.num_edges(), want.num_edges());
    ASSERT_EQ(dyn.triangles(), BruteTriangles(want)) << "batch " << batch;

    // Merged neighbor iteration equals the rebuilt graph's rows.
    for (NodeId v = 0; v < kNodes; ++v) {
      const auto got = dyn.Neighbors(v, &scratch);
      const auto ref = want.Neighbors(v);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), ref.begin(), ref.end()))
          << "row " << v << " diverged in batch " << batch;
    }

    // Materialization is the same graph, arc for arc.
    const Graph mat = dyn.MaterializeGraph();
    ASSERT_EQ(mat.EdgeList(), want.EdgeList()) << "batch " << batch;
  }
}

TEST(DynGraphTest, CompactionPreservesCountsAndClearsOverlay) {
  DynGraph dyn = DynGraph::FromBase(K4PlusPath());
  ASSERT_TRUE(
      dyn.Apply(std::vector<EdgeMutation>{{3, 5, true}, {0, 1, false}}).ok());
  const uint64_t t = dyn.triangles();
  const uint64_t m = dyn.num_edges();
  const uint64_t seq = dyn.seq();
  ASSERT_GT(dyn.overlay_arcs(), 0u);

  EXPECT_FALSE(dyn.ShouldCompact(0.25, 1u << 20));  // min_arcs not reached
  EXPECT_TRUE(dyn.ShouldCompact(0.25, 1));

  dyn.Compact();
  EXPECT_EQ(dyn.overlay_arcs(), 0u);
  EXPECT_EQ(dyn.triangles(), t);
  EXPECT_EQ(dyn.num_edges(), m);
  EXPECT_EQ(dyn.seq(), seq);
  // The new base is the merged graph; fresh mutations keep working.
  EXPECT_TRUE(dyn.base().HasEdge(3, 5));
  EXPECT_FALSE(dyn.base().HasEdge(0, 1));
  ASSERT_TRUE(dyn.Apply(std::vector<EdgeMutation>{{0, 1, true}}).ok());
  EXPECT_EQ(dyn.triangles(), t + 2);  // 0-1 re-closes two K4 triangles
}

// ---------------------------------------------------------------------------
// Compaction container bit-identity

TEST(CompactTest, StreamedContainerIsBitIdenticalToWriteTlgFile) {
  DynGraph dyn = DynGraph::FromBase(K4PlusPath());
  ASSERT_TRUE(
      dyn.Apply(std::vector<EdgeMutation>{{3, 5, true}, {2, 3, false}}).ok());
  const Graph merged = dyn.MaterializeGraph();

  const std::vector<OrientSpec> specs = {
      OrientSpec{PermutationKind::kDescending, 0},
      OrientSpec{PermutationKind::kUniform, 7}};

  const std::string compacted = TempPath("compact.tlg");
  CompactOptions copts;
  copts.orientations = specs;
  ASSERT_TRUE(CompactToTlg(merged, compacted, copts).ok());

  // Fresh convert of the same edge list through the in-memory writer.
  auto fresh_graph = Graph::FromEdges(merged.num_nodes(), merged.EdgeList());
  ASSERT_TRUE(fresh_graph.ok());
  const std::string fresh = TempPath("fresh.tlg");
  TlgWriteOptions wopts;
  wopts.orientations = specs;
  ASSERT_TRUE(WriteTlgFile(fresh_graph.ValueOrDie(), fresh, wopts).ok());

  const auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string a = read_all(compacted);
  const std::string b = read_all(fresh);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "compacted container must be bit-identical";

  // And it loads back as the same graph.
  auto loaded = TlgFile::Open(compacted);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph().EdgeList(), merged.EdgeList());
  ::unlink(compacted.c_str());
  ::unlink(fresh.c_str());
}

// ---------------------------------------------------------------------------
// Replay verifier

TEST(ReplayTest, RandomLogPassesBothChecksWithMidReplayCompaction) {
  Rng rng(7);
  const int kNodes = 20;
  auto base = Graph::FromEdges(
      kNodes, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  ASSERT_TRUE(base.ok());

  std::vector<EdgeMutation> log;
  for (int i = 0; i < 600; ++i) {
    EdgeMutation m;
    m.u = static_cast<NodeId>(rng.NextBounded(kNodes));
    do {
      m.v = static_cast<NodeId>(rng.NextBounded(kNodes));
    } while (m.v == m.u);
    m.insert = rng.NextDouble() < 0.7;
    log.push_back(m);
  }

  ReplayOptions options;
  options.batch_size = 64;
  options.compact_path = TempPath("replay_compact.tlg");
  options.fresh_path = TempPath("replay_fresh.tlg");
  options.orientations = {OrientSpec{PermutationKind::kDescending, 0}};
  options.recount_orient = OrientSpec{PermutationKind::kDescending, 0};
  // Tiny trigger so the replay exercises the production compaction path.
  options.compact_overlay_fraction = 0.05;
  options.compact_min_arcs = 1;

  auto report = ReplayVerify(base.ValueOrDie(), log, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ReplayReport& r = *report;
  EXPECT_EQ(r.mutations, log.size());
  EXPECT_EQ(r.applied + r.noops, r.mutations);
  EXPECT_GT(r.compactions, 0u);
  EXPECT_TRUE(r.counts_match)
      << "incremental " << r.incremental_triangles << " vs T1 " << r.recount_t1
      << " / T2 " << r.recount_t2;
  EXPECT_EQ(r.incremental_triangles, r.recount_t1);
  EXPECT_EQ(r.recount_t1, r.recount_t2);
  EXPECT_TRUE(r.tlg_checked);
  EXPECT_TRUE(r.tlg_bitmatch);
  EXPECT_GT(r.predicted_ops, 0.0);
  EXPECT_GT(r.comparisons, 0);
  EXPECT_TRUE(ReplayPassed(r));
  ::unlink(options.compact_path.c_str());
  ::unlink(options.fresh_path.c_str());
}

TEST(ReplayTest, CountsOnlyModeSkipsTheContainerCheck) {
  auto base = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}});
  ASSERT_TRUE(base.ok());
  const std::vector<EdgeMutation> log = {{0, 3, true}, {1, 3, true}};

  ReplayOptions options;
  options.verify_tlg = false;
  auto report = ReplayVerify(base.ValueOrDie(), log, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->counts_match);
  EXPECT_FALSE(report->tlg_checked);
  EXPECT_EQ(report->incremental_triangles, 2u);  // 0-1-2 plus 0-1-3
  EXPECT_TRUE(ReplayPassed(*report));
}

// ---------------------------------------------------------------------------
// Mutation cost formula

TEST(CostTest, PredictedMutationOpsIsTheMergeScanBound) {
  // g = identity, h == 1: the price of touching (u, v) is d(u) + d(v),
  // the merge kernel's scan bound on the two sorted rows.
  EXPECT_EQ(cost::PredictedMutationOps(3, 5), 8.0);
  EXPECT_EQ(cost::PredictedMutationOps(0, 0), 0.0);
  // Out-of-range endpoints price as degree zero, never negative.
  EXPECT_EQ(cost::PredictedMutationOps(-1, 4), 4.0);
}

}  // namespace
}  // namespace trilist::dyn
