#include "src/obs/prom.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/degree_profile.h"
#include "src/run/run_report.h"

namespace trilist::obs {
namespace {

TEST(PromWriterTest, GoldenExposition) {
  PromWriter w;
  w.Gauge("demo_gauge", "A demo gauge");
  w.Sample("demo_gauge", 0.5);
  w.Counter("demo_total", "A demo counter");
  w.Sample("demo_total", {{"kind", "a"}}, 3.0);
  w.Sample("demo_total", {{"kind", "b"}, {"shard", "1"}}, 4.0);
  EXPECT_EQ(std::move(w).Finish(),
            "# HELP demo_gauge A demo gauge\n"
            "# TYPE demo_gauge gauge\n"
            "demo_gauge 0.5\n"
            "# HELP demo_total A demo counter\n"
            "# TYPE demo_total counter\n"
            "demo_total{kind=\"a\"} 3\n"
            "demo_total{kind=\"b\",shard=\"1\"} 4\n");
}

TEST(PromWriterTest, EscapesLabelValues) {
  PromWriter w;
  w.Gauge("g", "h");
  w.Sample("g", {{"path", "a\\b\"c\nd"}}, 1.0);
  const std::string out = std::move(w).Finish();
  EXPECT_NE(out.find("g{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(PromWriterTest, EscapesAdversarialLabelValues) {
  PromWriter w;
  w.Gauge("g", "h");
  // A value that is nothing but escapable characters.
  w.Sample("g", {{"v", "\\\"\n\\"}}, 1.0);
  // Backslash sequences that already look escaped must be re-escaped,
  // not passed through (the scrape parser would otherwise unescape them
  // into different bytes than the original value).
  w.Sample("g", {{"v", "\\n"}}, 2.0);
  w.Sample("g", {{"v", "\\\\"}}, 3.0);
  // Non-ASCII UTF-8 passes through untouched (the exposition format is
  // UTF-8; only backslash, quote and newline are escaped).
  w.Sample("g", {{"v", "gr\xc3\xa4ph\xe2\x88\x86"}}, 4.0);
  // Several labels with hostile values keep their comma/quote framing.
  w.Sample("g", {{"a", "x\"y"}, {"b", "p,q"}}, 5.0);
  const std::string out = std::move(w).Finish();
  EXPECT_NE(out.find("g{v=\"\\\\\\\"\\n\\\\\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("g{v=\"\\\\n\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("g{v=\"\\\\\\\\\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("g{v=\"gr\xc3\xa4ph\xe2\x88\x86\"} 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("g{a=\"x\\\"y\",b=\"p,q\"} 5\n"), std::string::npos);
}

TEST(PromWriterTest, HistogramDeclaration) {
  PromWriter w;
  w.Histogram("lat_seconds", "Latency");
  w.Sample("lat_seconds_bucket", {{"le", "+Inf"}}, 2.0);
  w.Sample("lat_seconds_sum", 0.25);
  w.Sample("lat_seconds_count", 2.0);
  const std::string out = std::move(w).Finish();
  EXPECT_NE(out.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(out.find("lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("lat_seconds_count 2\n"), std::string::npos);
}

TEST(PromWriterTest, ValueFormatting) {
  PromWriter w;
  w.Gauge("g", "h");
  w.Sample("g", 1048576.0);                   // integral, no fraction
  w.Sample("g", 0.123456789012);              // 9 significant digits
  w.Sample("g", -3.0);
  const std::string out = std::move(w).Finish();
  EXPECT_NE(out.find("g 1048576\n"), std::string::npos);
  EXPECT_NE(out.find("g 0.123456789\n"), std::string::npos);
  EXPECT_NE(out.find("g -3\n"), std::string::npos);
}

RunReport SmallReport() {
  RunReport r;
  r.source = "in-memory";
  r.num_nodes = 100;
  r.num_edges = 250;
  r.order = "theta_D";
  r.threads = 2;
  r.requested_threads = 0;
  r.repeats = 1;
  r.build_version = "1.0.0";
  r.build_git_hash = "abcdef123456";
  r.build_compiler = "TestCompiler 0.0";
  r.build_type = "TestBuild";
  r.stages.Add("generate", 0.25);
  r.stages.Add("list", 0.5);
  MethodReport m;
  m.method = Method::kE1;
  m.triangles = 42;
  m.ops.local_scans = 100;
  m.ops.remote_scans = 200;
  m.formula_cost = 310.5;
  m.wall_s = 0.125;
  r.methods.push_back(m);
  r.peak_rss_bytes = 1048576;
  r.cpu_s = 0.75;
  r.utilization = 0.5;
  return r;
}

TEST(RunReportToPrometheusTest, ExportsCoreSeries) {
  const std::string out = RunReportToPrometheus(SmallReport());
  EXPECT_NE(out.find("# TYPE trilist_build_info gauge"),
            std::string::npos);
  EXPECT_NE(
      out.find("trilist_build_info{version=\"1.0.0\","
               "git_hash=\"abcdef123456\",compiler=\"TestCompiler 0.0\","
               "build_type=\"TestBuild\"} 1\n"),
      std::string::npos);
  EXPECT_NE(out.find("trilist_graph_nodes 100\n"), std::string::npos);
  EXPECT_NE(out.find("trilist_graph_edges 250\n"), std::string::npos);
  EXPECT_NE(out.find("trilist_run_threads 2\n"), std::string::npos);
  EXPECT_NE(out.find("trilist_stage_wall_seconds{stage=\"list\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(
      out.find("trilist_method_triangles_total{method=\"E1\"} 42\n"),
      std::string::npos);
  EXPECT_NE(
      out.find("trilist_method_paper_cost_ops_total{method=\"E1\"} 300\n"),
      std::string::npos);
  EXPECT_NE(
      out.find("trilist_method_formula_cost_ops{method=\"E1\"} 310.5\n"),
      std::string::npos);
  EXPECT_NE(out.find("trilist_peak_rss_bytes 1048576\n"),
            std::string::npos);
  EXPECT_NE(out.find("trilist_cpu_seconds_total 0.75\n"),
            std::string::npos);
  EXPECT_NE(out.find("trilist_utilization_ratio 0.5\n"),
            std::string::npos);
  // No degree profiles attached -> the bucket series are absent.
  EXPECT_EQ(out.find("trilist_degree_bucket_measured_ops"),
            std::string::npos);
}

TEST(RunReportToPrometheusTest, ExportsDegreeBuckets) {
  RunReport r = SmallReport();
  DegreeProfile p;
  p.method = Method::kE1;
  DegreeBucket b;
  b.bucket = 2;
  b.d_min = 2;
  b.d_max = 3;
  b.nodes = 7;
  b.measured_ops = 768;
  b.predicted_ops = 512.0;
  p.buckets.push_back(b);
  p.total_measured = 768;
  p.total_predicted = 512.0;
  r.degree_profiles.push_back(p);

  const std::string out = RunReportToPrometheus(r);
  EXPECT_NE(out.find("trilist_degree_bucket_measured_ops"
                     "{method=\"E1\",bucket=\"2\"} 768\n"),
            std::string::npos);
  EXPECT_NE(out.find("trilist_degree_bucket_predicted_ops"
                     "{method=\"E1\",bucket=\"2\"} 512\n"),
            std::string::npos);
  EXPECT_NE(out.find("trilist_degree_bucket_residual"
                     "{method=\"E1\",bucket=\"2\"} 0.5\n"),
            std::string::npos);
}

}  // namespace
}  // namespace trilist::obs
