#include "src/core/advisor.h"

#include <gtest/gtest.h>

namespace trilist {
namespace {

TEST(AdvisorTest, OptimalPermutationsMatchCorollaries) {
  // Corollary 1 + 2 with increasing r (the canonical weight family).
  EXPECT_EQ(OptimalPermutationKindFor(Method::kT1),
            PermutationKind::kDescending);
  EXPECT_EQ(OptimalPermutationKindFor(Method::kT3),
            PermutationKind::kAscending);
  EXPECT_EQ(OptimalPermutationKindFor(Method::kT2),
            PermutationKind::kRoundRobin);
  EXPECT_EQ(OptimalPermutationKindFor(Method::kE1),
            PermutationKind::kDescending);
  EXPECT_EQ(OptimalPermutationKindFor(Method::kE3),
            PermutationKind::kAscending);
  EXPECT_EQ(OptimalPermutationKindFor(Method::kE4),
            PermutationKind::kComplementaryRoundRobin);
  EXPECT_EQ(OptimalPermutationKindFor(Method::kE5),
            PermutationKind::kAscending);
  // Equivalence partners share the optimum.
  EXPECT_EQ(OptimalPermutationKindFor(Method::kT4),
            OptimalPermutationKindFor(Method::kT1));
  EXPECT_EQ(OptimalPermutationKindFor(Method::kE6),
            OptimalPermutationKindFor(Method::kE4));
  // Lookup iterators follow their lookup class.
  EXPECT_EQ(OptimalPermutationKindFor(Method::kL2),
            PermutationKind::kDescending);
  EXPECT_EQ(OptimalPermutationKindFor(Method::kL1),
            PermutationKind::kRoundRobin);
}

TEST(AdvisorTest, WorstIsComplement) {
  EXPECT_EQ(WorstPermutationKindFor(Method::kT1),
            PermutationKind::kAscending);
  EXPECT_EQ(WorstPermutationKindFor(Method::kT3),
            PermutationKind::kDescending);
  EXPECT_EQ(WorstPermutationKindFor(Method::kT2),
            PermutationKind::kComplementaryRoundRobin);
  EXPECT_EQ(WorstPermutationKindFor(Method::kE4),
            PermutationKind::kRoundRobin);
}

TEST(AdvisorTest, DivergentRegimePicksT1) {
  const MethodAdvice advice = AdviseForPareto(1.2);
  EXPECT_EQ(advice.method, Method::kT1);
  EXPECT_EQ(advice.order, PermutationKind::kDescending);
  EXPECT_FALSE(advice.t1_cost_finite);
  EXPECT_FALSE(advice.e1_cost_finite);
}

TEST(AdvisorTest, GapRegimePicksT1Unconditionally) {
  const MethodAdvice advice = AdviseForPareto(1.45, /*sei_speedup=*/1e9);
  EXPECT_EQ(advice.method, Method::kT1);
  EXPECT_TRUE(advice.t1_cost_finite);
  EXPECT_FALSE(advice.e1_cost_finite);
}

TEST(AdvisorTest, FastScanningHardwarePicksE1WhenBothFinite) {
  const MethodAdvice advice = AdviseForPareto(2.1, /*sei_speedup=*/95.0);
  EXPECT_TRUE(advice.t1_cost_finite);
  EXPECT_TRUE(advice.e1_cost_finite);
  EXPECT_EQ(advice.method, Method::kE1);
}

TEST(AdvisorTest, SlowScanningHardwarePicksT1) {
  const MethodAdvice advice = AdviseForPareto(2.1, /*sei_speedup=*/1.0);
  EXPECT_EQ(advice.method, Method::kT1);
}

TEST(AdvisorTest, RationaleIsNonEmpty) {
  for (double alpha : {1.2, 1.45, 2.1}) {
    EXPECT_FALSE(AdviseForPareto(alpha).rationale.empty()) << alpha;
  }
}

}  // namespace
}  // namespace trilist
