#include "src/sim/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/sim/cost_measurement.h"
#include "src/sim/report.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(CostMeasurementTest, MatchesDirectComputationOnCompleteGraph) {
  const Graph g = MakeComplete(12);
  // K_12 under any orientation: T1 total = C(12, 3) = 220.
  const double c =
      MeasurePerNodeCost(g, Method::kT1, PermutationKind::kAscending,
                         nullptr);
  EXPECT_DOUBLE_EQ(c, 220.0 / 12.0);
}

TEST(CostMeasurementTest, SharedOrientationAcrossMethods) {
  Rng rng(3);
  const Graph g = GenerateGnp(200, 0.05, &rng);
  const auto costs = MeasurePerNodeCosts(
      g, {Method::kT1, Method::kT2, Method::kE1},
      PermutationKind::kDescending, nullptr);
  ASSERT_EQ(costs.size(), 3u);
  // Proposition 2 on the shared orientation.
  EXPECT_NEAR(costs[2], costs[0] + costs[1], 1e-9);
}

TEST(ExperimentTest, ResolveBetaDefault) {
  ExperimentConfig config;
  config.alpha = 1.5;
  EXPECT_DOUBLE_EQ(ResolveBeta(config), 15.0);
  config.beta = 21.5;
  EXPECT_DOUBLE_EQ(ResolveBeta(config), 21.5);
}

TEST(ExperimentTest, ModelTracksSimulationAtModerateN) {
  // The Table 6 setting (alpha = 1.5, root truncation): the model should
  // land within a few percent of simulation already at n = 2e4.
  ExperimentConfig config;
  config.alpha = 1.5;
  config.truncation = TruncationKind::kRoot;
  config.n = 20000;
  config.num_sequences = 3;
  config.graphs_per_sequence = 2;
  config.seed = 42;
  const std::vector<ExperimentCell> cells = {
      {Method::kT1, PermutationKind::kAscending},
      {Method::kT1, PermutationKind::kDescending},
      {Method::kT2, PermutationKind::kRoundRobin},
  };
  const auto results = RunExperiment(config, cells);
  ASSERT_EQ(results.size(), 3u);
  for (size_t c = 0; c < results.size(); ++c) {
    EXPECT_EQ(results[c].sim.count(), 6u);
    EXPECT_GT(results[c].model, 0.0);
    EXPECT_LT(std::abs(results[c].ErrorPercent()), 10.0)
        << "cell " << c << ": sim=" << results[c].sim.Mean()
        << " model=" << results[c].model;
  }
  // And the qualitative ordering of Table 6: theta_D way below theta_A.
  EXPECT_LT(results[1].sim.Mean() * 2.0, results[0].sim.Mean());
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  ExperimentConfig config;
  config.alpha = 1.7;
  config.truncation = TruncationKind::kRoot;
  config.n = 2000;
  config.num_sequences = 2;
  config.graphs_per_sequence = 1;
  config.seed = 7;
  const std::vector<ExperimentCell> cells = {
      {Method::kT2, PermutationKind::kDescending}};
  const auto a = RunExperiment(config, cells);
  const auto b = RunExperiment(config, cells);
  EXPECT_DOUBLE_EQ(a[0].sim.Mean(), b[0].sim.Mean());
}

TEST(ExperimentTest, LimitFieldReflectsFiniteness) {
  ExperimentConfig config;
  config.alpha = 1.5;
  config.truncation = TruncationKind::kRoot;
  config.n = 1000;
  config.num_sequences = 1;
  config.graphs_per_sequence = 1;
  const std::vector<ExperimentCell> cells = {
      {Method::kT1, PermutationKind::kDescending},  // finite (4/3 < 1.5)
      {Method::kT1, PermutationKind::kAscending},   // infinite (needs > 2)
      {Method::kE1, PermutationKind::kDescending},  // boundary: infinite
  };
  const auto results = RunExperiment(config, cells);
  EXPECT_TRUE(std::isfinite(results[0].limit));
  EXPECT_TRUE(std::isinf(results[1].limit));
  EXPECT_TRUE(std::isinf(results[2].limit));
}

TEST(ReportTest, RendersTableWithAllColumns) {
  PaperTableSpec spec;
  spec.title = "smoke";
  spec.base.alpha = 1.7;
  spec.base.truncation = TruncationKind::kRoot;
  spec.base.num_sequences = 1;
  spec.base.graphs_per_sequence = 1;
  spec.base.seed = 5;
  spec.cells = {{Method::kT2, PermutationKind::kDescending}};
  spec.sizes = {1000, 2000};
  std::ostringstream out;
  RunAndPrintPaperTable(spec, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("=== smoke ==="), std::string::npos);
  EXPECT_NE(text.find("T2+theta_D sim"), std::string::npos);
  EXPECT_NE(text.find("T2+theta_D (50)"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("inf"), std::string::npos);  // the n = inf row
  EXPECT_NE(text.find("seed=5"), std::string::npos);
}

TEST(ReportTest, CellLabelFormat) {
  EXPECT_EQ(CellLabel({Method::kE4,
                       PermutationKind::kComplementaryRoundRobin}),
            "E4+theta_CRR");
}

}  // namespace
}  // namespace trilist
