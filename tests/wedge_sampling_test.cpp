#include "src/algo/wedge_sampling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/brute_force.h"
#include "src/algo/local_counts.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(WedgeSamplingTest, CompleteGraphIsFullyClosed) {
  Rng rng(1);
  const auto est =
      EstimateTrianglesByWedgeSampling(MakeComplete(10), 2000, &rng);
  EXPECT_DOUBLE_EQ(est.transitivity, 1.0);
  EXPECT_NEAR(est.triangles, 120.0, 1e-9);
  EXPECT_EQ(est.samples, 2000u);
  EXPECT_EQ(est.closed, 2000u);
}

TEST(WedgeSamplingTest, TriangleFreeGraphEstimatesZero) {
  Rng rng(2);
  const auto est =
      EstimateTrianglesByWedgeSampling(MakeStar(50), 2000, &rng);
  EXPECT_EQ(est.closed, 0u);
  EXPECT_DOUBLE_EQ(est.triangles, 0.0);
}

TEST(WedgeSamplingTest, DegenerateInputs) {
  Rng rng(3);
  const auto empty =
      EstimateTrianglesByWedgeSampling(MakeEmpty(5), 100, &rng);
  EXPECT_EQ(empty.samples, 0u);
  EXPECT_EQ(empty.wedges, 0.0);
  const auto single_edge = EstimateTrianglesByWedgeSampling(
      MakePath(2), 100, &rng);
  EXPECT_EQ(single_edge.samples, 0u);  // no wedges in a single edge
}

TEST(WedgeSamplingTest, EstimateWithinConfidenceOfTruth) {
  Rng rng(5);
  const Graph g = GenerateGnp(400, 0.06, &rng);
  const TriangleStats truth = ComputeTriangleStats(g);
  const auto est = EstimateTrianglesByWedgeSampling(g, 50000, &rng);
  EXPECT_EQ(est.wedges, truth.wedges);
  // 99% confidence band, with a safety factor for the test.
  EXPECT_NEAR(est.transitivity, truth.transitivity,
              2.0 * est.confidence99);
  const double tri_tolerance =
      2.0 * est.confidence99 * est.wedges / 3.0;
  EXPECT_NEAR(est.triangles, static_cast<double>(truth.triangles),
              tri_tolerance);
}

TEST(WedgeSamplingTest, ConfidenceShrinksWithSamples) {
  Rng rng(7);
  const Graph g = GenerateGnp(100, 0.1, &rng);
  const auto coarse = EstimateTrianglesByWedgeSampling(g, 100, &rng);
  const auto fine = EstimateTrianglesByWedgeSampling(g, 10000, &rng);
  // Wald band ~ sqrt(k(1-k)/s): two orders of magnitude more samples
  // shrink it by roughly 10x (the estimate itself also fluctuates).
  EXPECT_LT(fine.confidence99, coarse.confidence99 * 0.3);
  EXPECT_GT(fine.confidence99, 0.0);
}

TEST(WedgeSamplingTest, DeterministicGivenSeed) {
  const Graph g = MakeBowTie(6);
  Rng a(9);
  Rng b(9);
  const auto ea = EstimateTrianglesByWedgeSampling(g, 500, &a);
  const auto eb = EstimateTrianglesByWedgeSampling(g, 500, &b);
  EXPECT_EQ(ea.closed, eb.closed);
}

}  // namespace
}  // namespace trilist
