#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "src/algo/brute_force.h"
#include "src/algo/registry.h"
#include "src/algo/triangle_sink.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/erdos_renyi.h"
#include "src/gen/residual_generator.h"
#include "src/graph/builder.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

Graph MakeTestGraph(const std::string& kind) {
  Rng rng(12345);
  if (kind == "empty") return MakeEmpty(20);
  if (kind == "single_triangle") return MakeComplete(3);
  if (kind == "k6") return MakeComplete(6);
  if (kind == "star") return MakeStar(20);
  if (kind == "path") return MakePath(20);
  if (kind == "cycle") return MakeCycle(12);
  if (kind == "bowtie") return MakeBowTie(5);
  if (kind == "gnp_sparse") return GenerateGnp(120, 0.03, &rng);
  if (kind == "gnp_dense") return GenerateGnp(60, 0.25, &rng);
  if (kind == "powerlaw") {
    const DiscretePareto base(1.5, 6.0);
    const TruncatedDistribution fn(base, 20);
    std::vector<int64_t> degrees(150);
    for (auto& d : degrees) d = fn.Sample(&rng);
    MakeGraphic(&degrees);
    ResidualGenOptions options;
    options.strict = false;
    return GenerateExactDegree(degrees, &rng, nullptr, options)
        .ValueOrDie();
  }
  ADD_FAILURE() << "unknown graph kind " << kind;
  return MakeEmpty(0);
}

/// Converts label-space triangles to canonical original-ID triangles.
std::vector<CanonicalTriangle> ToCanonical(const OrientedGraph& og,
                                           const CollectingSink& sink) {
  std::vector<CanonicalTriangle> out;
  out.reserve(sink.triangles().size());
  for (const Triangle& t : sink.triangles()) {
    CanonicalTriangle c = {og.OriginalOf(t.x), og.OriginalOf(t.y),
                           og.OriginalOf(t.z)};
    std::sort(c.begin(), c.end());
    out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Param = std::tuple<Method, std::string, PermutationKind>;

class MethodCorrectnessTest : public ::testing::TestWithParam<Param> {};

TEST_P(MethodCorrectnessTest, ListsExactlyTheTrianglesOfTheGraph) {
  const auto [method, graph_kind, order] = GetParam();
  const Graph g = MakeTestGraph(graph_kind);
  Rng rng(99);
  const OrientedGraph og = OrientNamed(g, order, &rng);
  CollectingSink sink;
  const OpCounts ops = RunMethod(method, og, &sink);
  const auto expected = NeighborPairTriangles(g);
  const auto got = ToCanonical(og, sink);
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(ops.triangles, static_cast<int64_t>(expected.size()));
  // Every emission respects x < y < z in label space.
  for (const Triangle& t : sink.triangles()) {
    EXPECT_LT(t.x, t.y);
    EXPECT_LT(t.y, t.z);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsGraphsOrders, MethodCorrectnessTest,
    ::testing::Combine(
        ::testing::ValuesIn(AllMethods()),
        ::testing::Values("empty", "single_triangle", "k6", "star", "path",
                          "cycle", "bowtie", "gnp_sparse", "gnp_dense",
                          "powerlaw"),
        ::testing::Values(PermutationKind::kAscending,
                          PermutationKind::kDescending,
                          PermutationKind::kRoundRobin,
                          PermutationKind::kComplementaryRoundRobin,
                          PermutationKind::kUniform,
                          PermutationKind::kDegenerate)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(MethodName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param) + "_" +
             PermutationKindName(std::get<2>(info.param));
    });

TEST(BruteForceTest, TripleLoopMatchesNeighborPair) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = GenerateGnp(40, 0.15, &rng);
    EXPECT_EQ(BruteForceTriangles(g), NeighborPairTriangles(g));
    EXPECT_EQ(CountTrianglesReference(g), BruteForceTriangles(g).size());
  }
}

TEST(BruteForceTest, KnownCounts) {
  EXPECT_EQ(CountTrianglesReference(MakeComplete(6)), 20u);  // C(6,3)
  EXPECT_EQ(CountTrianglesReference(MakeStar(10)), 0u);
  EXPECT_EQ(CountTrianglesReference(MakeCycle(3)), 1u);
  EXPECT_EQ(CountTrianglesReference(MakeCycle(4)), 0u);
  EXPECT_EQ(CountTrianglesReference(MakeBowTie(3)), 2u);
}

TEST(DifferentialFuzzTest, RandomGraphsRandomOrdersAllAgree) {
  // Randomized differential testing: on each trial draw a random graph,
  // a random method, and a random orientation, and require agreement with
  // two independent oracles.
  Rng rng(20170514);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 5 + rng.NextBounded(60);
    const double p = 0.02 + rng.NextDouble() * 0.3;
    const Graph g = GenerateGnp(n, p, &rng);
    const Method m =
        AllMethods()[rng.NextBounded(AllMethods().size())];
    const Permutation theta =
        UniformPermutation(g.num_nodes(), &rng);
    const OrientedGraph og = Orient(g, theta);
    CollectingSink sink;
    RunMethod(m, og, &sink);
    const auto expected = NeighborPairTriangles(g);
    ASSERT_EQ(ToCanonical(og, sink), expected)
        << "trial " << trial << " method " << MethodName(m);
    ASSERT_EQ(CountTrianglesBitset(g), expected.size()) << trial;
  }
}

TEST(SinkTest, CountingAndCallbackSinks) {
  const Graph g = MakeComplete(5);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kAscending);
  CountingSink counter;
  RunMethod(Method::kT1, og, &counter);
  EXPECT_EQ(counter.count(), 10u);  // C(5,3)
  int calls = 0;
  CallbackSink cb([&](NodeId, NodeId, NodeId) { ++calls; });
  RunMethod(Method::kE1, og, &cb);
  EXPECT_EQ(calls, 10);
}

}  // namespace
}  // namespace trilist
