#include "src/core/continuous_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/discrete_model.h"
#include "src/core/h_function.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"

namespace trilist {
namespace {

TEST(WeightedPrefixTest, MatchesSpreadClosedForm) {
  // M(x)/E[D] must equal Eq. (19) when alpha > 1.
  for (double alpha : {1.3, 1.7, 2.5}) {
    const ContinuousPareto f(alpha, 30.0 * (alpha - 1.0));
    for (double x : {0.5, 5.0, 50.0, 5000.0}) {
      EXPECT_NEAR(ParetoWeightedPrefix(f, x) / f.Mean(), f.SpreadCdf(x),
                  1e-9)
          << alpha << " " << x;
    }
  }
}

TEST(WeightedPrefixTest, AlphaOneBranch) {
  const ContinuousPareto f(1.0, 30.0);
  // M(x) finite for finite x even though E[D] = inf.
  const double m10 = ParetoWeightedPrefix(f, 10.0);
  const double m100 = ParetoWeightedPrefix(f, 100.0);
  EXPECT_GT(m10, 0.0);
  EXPECT_GT(m100, m10);
  // Numerical cross-check against direct quadrature.
  double direct = 0.0;
  const int kSteps = 400000;
  const double dx = 10.0 / kSteps;
  for (int i = 0; i < kSteps; ++i) {
    const double x = (i + 0.5) * dx;
    direct += x * f.Density(x) * dx;
  }
  EXPECT_NEAR(m10, direct, m10 * 1e-5);
}

TEST(WeightedPrefixTest, ZeroAndNegative) {
  const ContinuousPareto f(1.5, 15.0);
  EXPECT_EQ(ParetoWeightedPrefix(f, 0.0), 0.0);
  EXPECT_EQ(ParetoWeightedPrefix(f, -3.0), 0.0);
}

TEST(ContinuousCostTest, ConvergesWithGridRefinement) {
  const ContinuousPareto f(1.5, 15.0);
  const double coarse = ContinuousCost(f, 1e6, Method::kT1,
                                       XiMap::Descending(),
                                       WeightFn::Identity(), 1 << 13);
  const double fine = ContinuousCost(f, 1e6, Method::kT1,
                                     XiMap::Descending(),
                                     WeightFn::Identity(), 1 << 17);
  EXPECT_NEAR(coarse, fine, std::abs(fine) * 0.01);
}

TEST(ContinuousCostTest, CloseToDiscreteModelWithinPaperGap) {
  // Table 5 reports a persistent 1.5-2% gap between the continuous and
  // discrete models; assert the two land within 5% of each other.
  const double alpha = 1.5;
  const double beta = 15.0;
  const ContinuousPareto cont(alpha, beta);
  const DiscretePareto disc(alpha, beta);
  const int64_t t = 1000000;
  const TruncatedDistribution fn(disc, t);
  const double c_cont = ContinuousCost(cont, static_cast<double>(t),
                                       Method::kT1, XiMap::Descending());
  const double c_disc =
      ExactDiscreteCost(fn, t, Method::kT1, XiMap::Descending());
  EXPECT_NEAR(c_cont, c_disc, c_disc * 0.05);
  // And the gap should be real (the paper's "crude approximation" point):
  EXPECT_GT(std::abs(c_cont - c_disc) / c_disc, 0.001);
}

TEST(ContinuousCostTest, UniformMapFactorsLikeEq31) {
  const ContinuousPareto f(2.1, 33.0);
  const double t = 10000.0;
  const double t1 =
      ContinuousCost(f, t, Method::kT1, XiMap::Uniform());
  const double e1 =
      ContinuousCost(f, t, Method::kE1, XiMap::Uniform());
  // E1 = 2x T1 under the uniform map (1/3 vs 1/6).
  EXPECT_NEAR(e1 / t1, 2.0, 0.01);
}

TEST(ContinuousCostTest, IncreasesWithTruncation) {
  const ContinuousPareto f(1.5, 15.0);
  const double c_small = ContinuousCost(f, 1e3, Method::kT1,
                                        XiMap::Descending());
  const double c_large = ContinuousCost(f, 1e9, Method::kT1,
                                        XiMap::Descending());
  EXPECT_LT(c_small, c_large);
}

TEST(ContinuousCostTest, Table5ConvergencePlateau) {
  // Paper Table 5 column 2: values rise from ~145 (t~1e3) to ~363
  // (t >= 1e14) for T1 + theta_D, alpha = 1.5, beta = 15. Check the shape:
  // a plateau emerges and successive decades stop moving the value.
  const ContinuousPareto f(1.5, 15.0);
  const double v14 = ContinuousCost(f, 1e14, Method::kT1,
                                    XiMap::Descending());
  const double v17 = ContinuousCost(f, 1e17, Method::kT1,
                                    XiMap::Descending());
  EXPECT_NEAR(v14, v17, v17 * 0.005);
  EXPECT_GT(v17, 300.0);
  EXPECT_LT(v17, 420.0);
}

}  // namespace
}  // namespace trilist
