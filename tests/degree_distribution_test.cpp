#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/degree/degree_sequence.h"
#include "src/degree/distribution.h"
#include "src/degree/pareto.h"
#include "src/degree/simple_distributions.h"
#include "src/degree/truncated.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// Generic CDF/PMF/quantile properties, parameterized over distributions.
// ---------------------------------------------------------------------------

std::unique_ptr<DegreeDistribution> MakeDist(const std::string& name) {
  if (name == "pareto15") {
    return std::make_unique<DiscretePareto>(1.5, 15.0);
  }
  if (name == "pareto21") {
    return std::make_unique<DiscretePareto>(2.1, 33.0);
  }
  if (name == "geometric") {
    return std::make_unique<GeometricDegree>(0.2);
  }
  if (name == "constant") {
    return std::make_unique<ConstantDegree>(7);
  }
  if (name == "uniform") {
    return std::make_unique<UniformDegree>(3, 12);
  }
  if (name == "tabulated") {
    return std::make_unique<TabulatedDegree>(
        std::vector<double>{1, 0, 2, 5, 0, 3});
  }
  ADD_FAILURE() << "unknown distribution " << name;
  return nullptr;
}

class DistributionPropertyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DistributionPropertyTest, CdfIsMonotoneAndBounded) {
  auto dist = MakeDist(GetParam());
  EXPECT_EQ(dist->Cdf(0.0), 0.0);
  EXPECT_EQ(dist->Cdf(0.999), 0.0);
  double prev = 0.0;
  for (int64_t k = 1; k <= 200; ++k) {
    const double f = dist->Cdf(static_cast<double>(k));
    EXPECT_GE(f, prev) << k;
    EXPECT_LE(f, 1.0 + 1e-12) << k;
    prev = f;
  }
}

TEST_P(DistributionPropertyTest, PmfMatchesCdfDifferences) {
  auto dist = MakeDist(GetParam());
  for (int64_t k = 1; k <= 100; ++k) {
    EXPECT_NEAR(dist->Pmf(k),
                dist->Cdf(static_cast<double>(k)) -
                    dist->Cdf(static_cast<double>(k - 1)),
                1e-12)
        << k;
  }
  EXPECT_EQ(dist->Pmf(0), 0.0);
  EXPECT_EQ(dist->Pmf(-5), 0.0);
}

TEST_P(DistributionPropertyTest, SurvivalComplementsCdf) {
  auto dist = MakeDist(GetParam());
  for (int64_t k = 0; k <= 100; ++k) {
    EXPECT_NEAR(dist->Survival(static_cast<double>(k)),
                1.0 - dist->Cdf(static_cast<double>(k)), 1e-12)
        << k;
  }
}

TEST_P(DistributionPropertyTest, QuantileIsGeneralizedInverse) {
  auto dist = MakeDist(GetParam());
  for (double u : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9999}) {
    const int64_t k = dist->Quantile(u);
    EXPECT_GE(k, 1);
    EXPECT_GE(dist->Cdf(static_cast<double>(k)), u) << u;
    if (k > 1 && u > 0.0) {
      EXPECT_LT(dist->Cdf(static_cast<double>(k - 1)), u) << u;
    }
  }
}

TEST_P(DistributionPropertyTest, SamplingMatchesPmf) {
  auto dist = MakeDist(GetParam());
  Rng rng(42);
  const int kN = 200000;
  std::vector<int64_t> counts(64, 0);
  for (int i = 0; i < kN; ++i) {
    const int64_t d = dist->Sample(&rng);
    ASSERT_GE(d, 1);
    if (d < static_cast<int64_t>(counts.size())) ++counts[d];
  }
  for (int64_t k = 1; k < 40; ++k) {
    const double expected = dist->Pmf(k) * kN;
    if (expected < 50) continue;  // skip low-count bins
    EXPECT_NEAR(counts[k], expected, 6.0 * std::sqrt(expected))
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionPropertyTest,
                         ::testing::Values("pareto15", "pareto21",
                                           "geometric", "constant", "uniform",
                                           "tabulated"));

// ---------------------------------------------------------------------------
// Pareto specifics.
// ---------------------------------------------------------------------------

TEST(DiscreteParetoTest, MatchesClosedFormCdf) {
  const DiscretePareto d(1.5, 15.0);
  for (int64_t k : {1, 2, 5, 30, 1000}) {
    const double expected =
        1.0 - std::pow(1.0 + static_cast<double>(k) / 15.0, -1.5);
    EXPECT_NEAR(d.Cdf(static_cast<double>(k)), expected, 1e-14);
  }
  // Flooring: F is a step function.
  EXPECT_EQ(d.Cdf(5.7), d.Cdf(5.0));
}

TEST(DiscreteParetoTest, PaperParameterizationMeanNear30Point5) {
  // The paper keeps beta = 30(alpha - 1) so E[D] ~ 30.5 after
  // discretization (Section 7.3).
  for (double alpha : {1.5, 1.7, 2.1, 3.0}) {
    const DiscretePareto d = DiscretePareto::PaperParameterization(alpha);
    EXPECT_NEAR(d.Mean(), 30.5, 0.15) << "alpha=" << alpha;
  }
}

TEST(DiscreteParetoTest, MeanInfiniteForAlphaLeqOne) {
  const DiscretePareto d(0.9, 10.0);
  EXPECT_TRUE(std::isinf(d.Mean()));
}

TEST(DiscreteParetoTest, SurvivalAccurateInDeepTail) {
  const DiscretePareto d(1.5, 15.0);
  const double s = d.Survival(1e12);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1e-15);
  // 1 - Cdf would have lost all precision here.
  EXPECT_NEAR(s, std::pow(1.0 + 1e12 / 15.0, -1.5), s * 1e-10);
}

TEST(ContinuousParetoTest, QuantileInvertsCdf) {
  const ContinuousPareto f(1.7, 21.0);
  for (double u : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(f.Cdf(f.Quantile(u)), u, 1e-12);
  }
}

TEST(ContinuousParetoTest, MeanClosedForm) {
  const ContinuousPareto f(2.5, 30.0);
  EXPECT_DOUBLE_EQ(f.Mean(), 20.0);
  EXPECT_TRUE(std::isinf(ContinuousPareto(1.0, 30.0).Mean()));
}

TEST(ContinuousParetoTest, DensityIntegratesToCdf) {
  const ContinuousPareto f(1.5, 15.0);
  // Trapezoid integral of the density over [0, 100].
  const int kSteps = 200000;
  const double dx = 100.0 / kSteps;
  double acc = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double x = (i + 0.5) * dx;
    acc += f.Density(x) * dx;
  }
  EXPECT_NEAR(acc, f.Cdf(100.0), 1e-6);
}

// ---------------------------------------------------------------------------
// Truncation.
// ---------------------------------------------------------------------------

TEST(TruncationPointTest, LinearAndRoot) {
  EXPECT_EQ(TruncationPoint(TruncationKind::kLinear, 100), 99);
  EXPECT_EQ(TruncationPoint(TruncationKind::kRoot, 100), 10);
  EXPECT_EQ(TruncationPoint(TruncationKind::kRoot, 99), 9);
  EXPECT_EQ(TruncationPoint(TruncationKind::kRoot, 101), 10);
  EXPECT_EQ(TruncationPoint(TruncationKind::kRoot, 1000000), 1000);
  EXPECT_EQ(TruncationPoint(TruncationKind::kFixed, 100, 42), 42);
}

TEST(TruncatedDistributionTest, RenormalizesExactly) {
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, 100);
  EXPECT_DOUBLE_EQ(fn.Cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.Cdf(1000.0), 1.0);
  EXPECT_EQ(fn.Survival(100.0), 0.0);
  // F_n(x) = F(x)/F(t_n) inside the support.
  for (int64_t k : {1, 5, 50, 99}) {
    EXPECT_NEAR(fn.Cdf(static_cast<double>(k)),
                base.Cdf(static_cast<double>(k)) / base.Cdf(100.0), 1e-12);
  }
  // PMF sums to 1 over [1, t_n].
  double total = 0.0;
  for (int64_t k = 1; k <= 100; ++k) total += fn.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TruncatedDistributionTest, QuantileNeverExceedsTn) {
  const DiscretePareto base(1.2, 6.0);  // heavy tail
  const TruncatedDistribution fn(base, 50);
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const int64_t d = fn.Sample(&rng);
    ASSERT_GE(d, 1);
    ASSERT_LE(d, 50);
  }
  EXPECT_EQ(fn.Quantile(0.9999999), 50);
}

TEST(TruncatedDistributionTest, SurvivalConsistent) {
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, 1000);
  for (int64_t k : {1, 10, 100, 999}) {
    EXPECT_NEAR(fn.Survival(static_cast<double>(k)),
                1.0 - fn.Cdf(static_cast<double>(k)), 1e-12)
        << k;
  }
}

// ---------------------------------------------------------------------------
// Degree sequences.
// ---------------------------------------------------------------------------

TEST(DegreeSequenceTest, AggregatesAndSorting) {
  DegreeSequence seq(std::vector<int64_t>{3, 1, 4, 1, 5});
  EXPECT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq.Sum(), 14);
  EXPECT_EQ(seq.Max(), 5);
  EXPECT_TRUE(seq.HasEvenSum());
  EXPECT_EQ(seq.SortedAscending(),
            (std::vector<int64_t>{1, 1, 3, 4, 5}));
  EXPECT_EQ(seq[2], 4);
}

TEST(DegreeSequenceTest, IidSamplingRespectsBounds) {
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, 31);  // root truncation for n=1000
  Rng rng(9);
  const DegreeSequence seq = DegreeSequence::SampleIid(fn, 1000, &rng);
  EXPECT_EQ(seq.size(), 1000u);
  EXPECT_LE(seq.Max(), 31);
  for (size_t i = 0; i < seq.size(); ++i) EXPECT_GE(seq[i], 1);
}

TEST(ApproxExpectationTest, SecondMomentOfUniform) {
  const UniformDegree d(1, 10);
  const double second = ApproxExpectation(
      d, [](double x) { return x * x; });
  EXPECT_NEAR(second, 38.5, 1e-9);  // E[K^2] for uniform 1..10
}

}  // namespace
}  // namespace trilist
