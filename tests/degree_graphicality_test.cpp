#include "src/degree/graphicality.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(IsGraphicTest, SimpleGraphicSequences) {
  EXPECT_TRUE(IsGraphic({}));                    // empty graph
  EXPECT_TRUE(IsGraphic({0}));                   // isolated node
  EXPECT_TRUE(IsGraphic({1, 1}));                // one edge
  EXPECT_TRUE(IsGraphic({2, 2, 2}));             // triangle
  EXPECT_TRUE(IsGraphic({3, 3, 3, 3}));          // K4
  EXPECT_TRUE(IsGraphic({1, 1, 1, 1}));          // two disjoint edges
  EXPECT_TRUE(IsGraphic({2, 1, 1}));             // path
  EXPECT_TRUE(IsGraphic({4, 1, 1, 1, 1}));       // star
}

TEST(IsGraphicTest, NonGraphicSequences) {
  EXPECT_FALSE(IsGraphic({1}));          // odd sum
  EXPECT_FALSE(IsGraphic({3, 1}));       // degree > n-1
  EXPECT_FALSE(IsGraphic({2, 2, 1}));    // odd sum
  EXPECT_FALSE(IsGraphic({3, 3, 1, 1}));  // fails Erdos-Gallai at k=2
  EXPECT_FALSE(IsGraphic({-1, 1}));      // negative degree
  EXPECT_FALSE(IsGraphic({5, 5, 4, 4, 2, 1, 1}));  // classic EG failure
}

TEST(IsGraphicTest, AgreesWithHavelHakimiOnRandomInputs) {
  // Havel-Hakimi as an independent oracle.
  auto havel_hakimi = [](std::vector<int64_t> d) {
    while (true) {
      std::sort(d.begin(), d.end(), std::greater<int64_t>());
      if (d.empty() || d[0] == 0) return true;
      const int64_t k = d[0];
      if (k > static_cast<int64_t>(d.size()) - 1) return false;
      d.erase(d.begin());
      for (int64_t i = 0; i < k; ++i) {
        if (--d[static_cast<size_t>(i)] < 0) return false;
      }
    }
  };
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = 2 + rng.NextBounded(12);
    std::vector<int64_t> d(n);
    for (auto& x : d) {
      x = static_cast<int64_t>(rng.NextBounded(n));
    }
    EXPECT_EQ(IsGraphic(d), havel_hakimi(d))
        << "trial " << trial << " n=" << n;
  }
}

TEST(MakeGraphicTest, LeavesGraphicSequencesAlone) {
  std::vector<int64_t> d = {2, 2, 2};
  EXPECT_EQ(MakeGraphic(&d), 0);
  EXPECT_EQ(d, (std::vector<int64_t>{2, 2, 2}));
}

TEST(MakeGraphicTest, FixesOddSum) {
  std::vector<int64_t> d = {3, 2, 2, 2};  // sum 9
  const int64_t dec = MakeGraphic(&d);
  EXPECT_EQ(dec, 1);
  EXPECT_TRUE(IsGraphic(d));
  EXPECT_EQ(std::accumulate(d.begin(), d.end(), int64_t{0}), 8);
}

TEST(MakeGraphicTest, FixesOversizedDegree) {
  std::vector<int64_t> d = {9, 1, 1, 1};  // max degree exceeds n-1
  MakeGraphic(&d);
  EXPECT_TRUE(IsGraphic(d));
}

TEST(MakeGraphicTest, AllOnesOddCount) {
  std::vector<int64_t> d = {1, 1, 1};
  MakeGraphic(&d);
  EXPECT_TRUE(IsGraphic(d));
}

TEST(MakeGraphicTest, ParetoSequencesNeedAtMostParityFix) {
  // Under root truncation, sampled Pareto sequences should be graphic up
  // to the odd-sum stub with overwhelming probability (Section 1.2).
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, 100);  // t = sqrt(10000)
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> d(10000);
    for (auto& x : d) x = fn.Sample(&rng);
    const int64_t decrements = MakeGraphic(&d);
    EXPECT_LE(decrements, 1) << "trial " << trial;
    EXPECT_TRUE(IsGraphic(d));
  }
}

}  // namespace
}  // namespace trilist
