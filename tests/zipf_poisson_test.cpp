#include "src/degree/zipf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/truncated.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(ZipfTest, PmfProportionalToPowerLaw) {
  const ZipfDegree z(2.0, 1000);
  // p(k) / p(2k) = (2k)^s / k^s = 2^s = 4.
  for (int64_t k : {1, 5, 50, 400}) {
    EXPECT_NEAR(z.Pmf(k) / z.Pmf(2 * k), 4.0, 1e-9) << k;
  }
}

TEST(ZipfTest, CdfNormalized) {
  const ZipfDegree z(1.5, 500);
  EXPECT_DOUBLE_EQ(z.Cdf(500.0), 1.0);
  EXPECT_DOUBLE_EQ(z.Cdf(5000.0), 1.0);
  EXPECT_EQ(z.Cdf(0.5), 0.0);
  double total = 0.0;
  for (int64_t k = 1; k <= 500; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, QuantileInverts) {
  const ZipfDegree z(1.2, 300);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const int64_t k = z.Sample(&rng);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 300);
  }
  EXPECT_EQ(z.Quantile(0.0), 1);
  EXPECT_EQ(z.Quantile(0.999999), 300);
}

TEST(ZipfTest, MeanMatchesDirectSum) {
  const ZipfDegree z(2.5, 200);
  double direct = 0.0;
  for (int64_t k = 1; k <= 200; ++k) {
    direct += static_cast<double>(k) * z.Pmf(k);
  }
  EXPECT_NEAR(z.Mean(), direct, 1e-12);
}

TEST(ZipfTest, PlugsIntoTheCostModel) {
  // Zipf s corresponds to Pareto tail alpha = s - 1; with s = 3.2 the
  // T1+theta_D limit is finite and the ordering T1 < T2 holds.
  const ZipfDegree z(3.2, 1 << 20);
  const double t1 = AsymptoticCost(z, Method::kT1, XiMap::Descending());
  const double t2 = AsymptoticCost(z, Method::kT2, XiMap::RoundRobin());
  EXPECT_GT(t1, 0.0);
  EXPECT_LT(t1, t2);
}

TEST(ShiftedPoissonTest, MomentsAndSupport) {
  const ShiftedPoissonDegree d(4.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  double total = 0.0;
  double mean = 0.0;
  for (int64_t k = 1; k <= d.MaxSupport(); ++k) {
    total += d.Pmf(k);
    mean += static_cast<double>(k) * d.Pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(mean, 5.0, 1e-7);
}

TEST(ShiftedPoissonTest, PmfRecurrence) {
  // P(D = k+1) / P(D = k) = lambda / k for the shifted Poisson.
  const ShiftedPoissonDegree d(3.0);
  for (int64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(d.Pmf(k + 1) / d.Pmf(k), 3.0 / static_cast<double>(k),
                1e-9)
        << k;
  }
}

TEST(ShiftedPoissonTest, SamplingMatchesMean) {
  const ShiftedPoissonDegree d(7.5);
  Rng rng(5);
  double acc = 0.0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) acc += static_cast<double>(d.Sample(&rng));
  EXPECT_NEAR(acc / kN, 8.5, 0.05);
}

TEST(ShiftedPoissonTest, LightTailMakesEveryLimitFinite) {
  // All four methods have finite limits for any alpha-equivalent > 2
  // light tail; Algorithm 2 on the Poisson converges to small constants
  // and theta_D still beats theta_A for T1.
  const ShiftedPoissonDegree d(10.0);
  const double t1_d = AsymptoticCost(d, Method::kT1, XiMap::Descending());
  const double t1_a = AsymptoticCost(d, Method::kT1, XiMap::Ascending());
  EXPECT_GT(t1_d, 0.0);
  EXPECT_LT(t1_d, t1_a);
  EXPECT_LT(t1_a, 200.0);  // light tails: everything is cheap
}

}  // namespace
}  // namespace trilist
