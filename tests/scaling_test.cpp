#include "src/core/scaling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/fast_model.h"
#include "src/core/xi_map.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"

namespace trilist {
namespace {

TEST(SpreadTailRateTest, BranchesOfEq46) {
  // alpha > 1: x^(1-alpha), independent of t_n.
  EXPECT_DOUBLE_EQ(SpreadTailRate(1.5, 100.0, 1e6),
                   std::pow(100.0, -0.5));
  // alpha = 1: 1 - log(x)/log(t_n).
  EXPECT_NEAR(SpreadTailRate(1.0, 100.0, 1e6),
              1.0 - std::log(100.0) / std::log(1e6), 1e-12);
  // alpha < 1: 1 - (x/t_n)^(1-alpha).
  EXPECT_NEAR(SpreadTailRate(0.5, 100.0, 1e6),
              1.0 - std::sqrt(100.0) / std::sqrt(1e6), 1e-12);
  // Tails decrease in x.
  for (double alpha : {0.5, 1.0, 1.5}) {
    EXPECT_GT(SpreadTailRate(alpha, 10.0, 1e6),
              SpreadTailRate(alpha, 1000.0, 1e6));
  }
}

TEST(ScalingRateTest, Eq47Branches) {
  EXPECT_DOUBLE_EQ(T1ScalingRate(4.0 / 3.0, 1e6), std::log(1e6));
  EXPECT_NEAR(T1ScalingRate(1.2, 1e6), std::pow(1e6, 0.2), 1e-9);
  EXPECT_NEAR(T1ScalingRate(1.0, 1e6),
              1e3 / (std::log(1e6) * std::log(1e6)), 1e-9);
  EXPECT_NEAR(T1ScalingRate(0.8, 1e6), std::pow(1e6, 0.6), 1e-6);
}

TEST(ScalingRateTest, Eq48Branches) {
  EXPECT_DOUBLE_EQ(E1ScalingRate(1.5, 1e6), std::log(1e6));
  EXPECT_NEAR(E1ScalingRate(1.2, 1e6), std::pow(1e6, 0.3), 1e-9);
  EXPECT_NEAR(E1ScalingRate(1.0, 1e6), 1e3 / std::log(1e6), 1e-9);
  EXPECT_NEAR(E1ScalingRate(0.8, 1e6), std::pow(1e6, 0.6), 1e-6);
}

TEST(ScalingRateTest, T1GrowsSlowerThanE1InsideUnitGap) {
  // Section 6.3: a_n = o(b_n) on the shared divergence range alpha in
  // [1, 4/3); for alpha < 1 the two rates coincide. (a_n is only defined
  // up to T1's own threshold 4/3.)
  for (double alpha : {1.05, 1.15, 1.25, 1.32}) {
    const double r6 = T1ScalingRate(alpha, 1e6) / E1ScalingRate(alpha, 1e6);
    const double r9 = T1ScalingRate(alpha, 1e9) / E1ScalingRate(alpha, 1e9);
    EXPECT_LT(r9, r6) << alpha;
  }
  for (double alpha : {0.5, 0.8}) {
    EXPECT_DOUBLE_EQ(T1ScalingRate(alpha, 1e8), E1ScalingRate(alpha, 1e8))
        << alpha;
  }
}

TEST(ScalingRateTest, ModelGrowthTracksEq47UnderRootTruncation) {
  // E[c_n(T1, theta_D)] / a_n should approach a constant: check that the
  // ratio moves by less across decades than the cost itself.
  const double alpha = 1.2;
  const DiscretePareto f = DiscretePareto::PaperParameterization(alpha);
  const XiMap xi = XiMap::Descending();
  double prev_cost = 0.0;
  double prev_ratio = 0.0;
  double cost_drift = 0.0;
  double ratio_drift = 0.0;
  for (double n : {1e6, 1e8, 1e10}) {
    const auto t = static_cast<int64_t>(std::sqrt(n));
    const TruncatedDistribution fn(f, t);
    const double cost = FastDiscreteCost(fn, t, Method::kT1, xi,
                                         WeightFn::Identity(), 1e-5);
    const double ratio = cost / T1ScalingRate(alpha, n);
    if (prev_cost > 0.0) {
      cost_drift += std::abs(std::log(cost / prev_cost));
      ratio_drift += std::abs(std::log(ratio / prev_ratio));
    }
    prev_cost = cost;
    prev_ratio = ratio;
  }
  EXPECT_LT(ratio_drift, cost_drift * 0.35);
}

TEST(ScalingRateTest, E1ModelGrowthTracksEq48) {
  const double alpha = 1.2;
  const DiscretePareto f = DiscretePareto::PaperParameterization(alpha);
  const XiMap xi = XiMap::Descending();
  double prev_cost = 0.0;
  double prev_ratio = 0.0;
  double cost_drift = 0.0;
  double ratio_drift = 0.0;
  for (double n : {1e6, 1e8, 1e10}) {
    const auto t = static_cast<int64_t>(std::sqrt(n));
    const TruncatedDistribution fn(f, t);
    const double cost = FastDiscreteCost(fn, t, Method::kE1, xi,
                                         WeightFn::Identity(), 1e-5);
    const double ratio = cost / E1ScalingRate(alpha, n);
    if (prev_cost > 0.0) {
      cost_drift += std::abs(std::log(cost / prev_cost));
      ratio_drift += std::abs(std::log(ratio / prev_ratio));
    }
    prev_cost = cost;
    prev_ratio = ratio;
  }
  EXPECT_LT(ratio_drift, cost_drift * 0.35);
}

}  // namespace
}  // namespace trilist
