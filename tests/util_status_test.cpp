#include "src/util/status.h"

#include <gtest/gtest.h>

namespace trilist {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotGraphic("deg").code(), StatusCode::kNotGraphic);
  EXPECT_EQ(Status::GenerationStuck("g").code(),
            StatusCode::kGenerationStuck);
  EXPECT_EQ(Status::NotImplemented("n").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("i").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotGraphic("odd sum").ToString(),
            "NotGraphic: odd sum");
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::OutOfRange("deep"); };
  auto outer = [&]() -> Status {
    TRILIST_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ReturnNotOkMacroPassesThroughOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    TRILIST_RETURN_NOT_OK(inner());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace trilist
