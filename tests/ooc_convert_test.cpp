#include "src/ooc/convert.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/binfmt.h"
#include "src/graph/graph.h"
#include "src/graph/ingest.h"
#include "src/graph/io.h"
#include "src/ooc/chunk_reader.h"
#include "src/ooc/paged_count.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"
#include "src/xm/partitioned.h"

namespace trilist::ooc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<unsigned char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void Spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// A compact-ID edge-list file big enough to force spilling under the
/// 1 MiB budget floor (both arcs of every edge enter the sorter).
std::string SampleEdgeListFile(const std::string& name) {
  Rng rng(31);
  const Graph g = GenerateGnp(5000, 0.02, &rng);
  const std::string path = TempPath(name);
  EXPECT_TRUE(WriteEdgeListFile(g, path).ok());
  return path;
}

/// Small budget so every stage of the pipeline actually spills.
OocConvertOptions TightOptions() {
  OocConvertOptions options;
  options.mem_budget_bytes = 1 << 20;
  options.tmpdir = ::testing::TempDir();
  return options;
}

TEST(ChunkReaderTest, ReassemblesFileInOrder) {
  const std::string path = TempPath("chunks.bin");
  {
    std::ofstream out(path, std::ios::binary);
    Rng rng(5);
    for (int i = 0; i < 300000; ++i) {
      const char c = static_cast<char>(rng.Next() & 0xff);
      out.write(&c, 1);
    }
  }
  const std::vector<unsigned char> want = Slurp(path);
  for (const bool direct : {true, false}) {
    ChunkReaderOptions ropts;
    ropts.chunk_bytes = 8 << 10;  // many chunks through the slot ring
    ropts.queue_depth = 3;
    ropts.workers = 2;
    ropts.direct_io = direct;
    auto opened = ChunkReader::Open(path, ropts);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ChunkReader& reader = opened.ValueOrDie();
    EXPECT_EQ(reader.file_size(), want.size());
    std::vector<unsigned char> got;
    while (true) {
      auto chunk = reader.Next();
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk->empty()) break;
      got.insert(got.end(), chunk->begin(), chunk->end());
    }
    EXPECT_EQ(got, want) << "direct=" << direct;
    EXPECT_EQ(reader.stats().bytes_read,
              static_cast<int64_t>(want.size()));
    EXPECT_GT(reader.stats().chunks, 10);
  }
}

TEST(ChunkReaderTest, MissingFileIsClearError) {
  EXPECT_FALSE(ChunkReader::Open("/nonexistent/trilist-input").ok());
}

TEST(OocConvertTest, ByteIdenticalToInMemoryPipeline) {
  const std::string text = SampleEdgeListFile("ooc_sample.txt");
  const std::vector<OrientSpec> orients = {
      {PermutationKind::kDescending, 0},
      {PermutationKind::kAscending, 0},
      {PermutationKind::kRoundRobin, 0},
      {PermutationKind::kComplementaryRoundRobin, 0},
      {PermutationKind::kUniform, 77}};

  const std::string mem_path = TempPath("ooc_mem.tlg");
  auto ingested = IngestEdgeListFile(text);
  ASSERT_TRUE(ingested.ok());
  TlgWriteOptions wopts;
  wopts.orientations = orients;
  ASSERT_TRUE(WriteTlgFile(ingested->graph, mem_path, wopts).ok());

  const std::string ooc_path = TempPath("ooc_out.tlg");
  OocConvertOptions options = TightOptions();
  options.orientations = orients;
  auto report = OocConvertFile(text, ooc_path, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(Slurp(mem_path), Slurp(ooc_path));
  EXPECT_GT(report->spill_runs, 0) << "budget must force real spilling";
  EXPECT_GT(report->spill_bytes, 0);
  EXPECT_GT(report->input_bytes, 0);
  EXPECT_GT(report->output_bytes, 0);
  EXPECT_EQ(report->ingest.num_edges, ingested->stats.num_edges);
}

TEST(OocConvertTest, DirtyInputStatsMatchInMemoryIngester) {
  const std::string path = TempPath("ooc_dirty.txt");
  Spit(path,
       "# comment header\n"
       "0 1\n"
       "1 0\n"        // duplicate (reversed)
       "2 2\n"        // self-loop
       "\n"
       "   \n"
       "% other comment\n"
       "1 2\r\n"      // CRLF
       "0\t2\n"       // tab separated
       "0 2\n");      // duplicate
  auto ingested = IngestEdgeListFile(path);
  ASSERT_TRUE(ingested.ok());

  const std::string out = TempPath("ooc_dirty.tlg");
  auto report = OocConvertFile(path, out, TightOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const IngestStats& a = report->ingest;
  const IngestStats& b = ingested->stats;
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.comment_lines, b.comment_lines);
  EXPECT_EQ(a.blank_lines, b.blank_lines);
  EXPECT_EQ(a.edges_in, b.edges_in);
  EXPECT_EQ(a.self_loops_dropped, b.self_loops_dropped);
  EXPECT_EQ(a.duplicates_dropped, b.duplicates_dropped);
  EXPECT_EQ(a.max_input_id, b.max_input_id);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_edges, b.num_edges);

  auto t = TlgFile::Open(out);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->graph().num_nodes(), 3u);
  EXPECT_EQ(t->graph().num_edges(), 3u);
}

TEST(OocConvertTest, MalformedLineReportsGlobalLineNumber) {
  const std::string path = TempPath("ooc_bad.txt");
  Spit(path, "0 1\n1 2\nnot an edge\n2 3\n");
  const std::string out = TempPath("ooc_bad.tlg");
  auto report = OocConvertFile(path, out, TightOptions());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("line 3"), std::string::npos)
      << report.status().ToString();
}

TEST(OocConvertTest, DegenerateOrientationRejected) {
  const std::string path = TempPath("ooc_degen.txt");
  Spit(path, "0 1\n1 2\n");
  OocConvertOptions options = TightOptions();
  options.orientations = {{PermutationKind::kDegenerate, 0}};
  auto report =
      OocConvertFile(path, TempPath("ooc_degen.tlg"), options);
  EXPECT_FALSE(report.ok());
}

TEST(OocConvertTest, TmpdirSpaceCheckFailsFastWithClearMessage) {
  const std::string text = SampleEdgeListFile("ooc_space.txt");
  OocConvertOptions options = TightOptions();
  options.free_bytes_override = 1024;  // pretend a nearly-full tmpfs
  auto report = OocConvertFile(text, TempPath("ooc_space.tlg"), options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().ToString().find("--tmpdir"),
            std::string::npos)
      << report.status().ToString();

  const Status direct = CheckTmpdirSpace(text, ::testing::TempDir(),
                                         /*num_orientations=*/1,
                                         /*free_bytes_override=*/1024);
  EXPECT_FALSE(direct.ok());
}

TEST(OocPagedCountTest, MatchesInMemoryExecutorsAndLedger) {
  const std::string text = SampleEdgeListFile("ooc_count.txt");
  const std::string path = TempPath("ooc_count.tlg");
  OocConvertOptions options = TightOptions();
  options.orientations = {{PermutationKind::kDescending, 0}};
  ASSERT_TRUE(OocConvertFile(text, path, options).ok());

  auto t = TlgFile::Open(path);
  ASSERT_TRUE(t.ok());
  const OrientedGraph* og =
      t->FindOrientation({PermutationKind::kDescending, 0});
  ASSERT_NE(og, nullptr);

  OocCountOptions copts;
  copts.mem_budget_bytes = 1 << 20;
  copts.spec = {PermutationKind::kDescending, 0};

  for (const bool use_e2 : {false, true}) {
    copts.use_e2 = use_e2;
    auto counted = OocCountTlg(path, copts);
    ASSERT_TRUE(counted.ok()) << counted.status().ToString();

    // Reference: the simulated partitioned executor over the same
    // partitioning (the paged path funds partitions with half the
    // budget; see paged_count.h).
    const Partitioning parts =
        Partitioning::ForMemoryBudget(*og, copts.mem_budget_bytes / 2);
    CountingSink sink;
    IoStats io;
    const OpCounts want = use_e2
                              ? RunPartitionedE2(*og, parts, &sink, &io)
                              : RunPartitionedE1(*og, parts, &sink, &io);

    EXPECT_EQ(counted->ops.triangles, want.triangles);
    EXPECT_EQ(counted->ops.candidate_checks, want.candidate_checks);
    EXPECT_EQ(counted->ops.local_scans, want.local_scans);
    EXPECT_EQ(counted->ops.remote_scans, want.remote_scans);
    EXPECT_EQ(counted->ops.merge_comparisons, want.merge_comparisons);
    EXPECT_EQ(counted->partitions,
              static_cast<int64_t>(parts.num_partitions()));
    EXPECT_EQ(counted->io.passes, io.passes);
    EXPECT_EQ(counted->io.bytes_loaded, io.bytes_loaded);
    EXPECT_EQ(counted->io.bytes_streamed, io.bytes_streamed);
    if (counted->mmap_backed && counted->partitions > 1) {
      EXPECT_GT(counted->evictions, 0);
    }
  }
}

TEST(OocPagedCountTest, MissingOrientationIsClearError) {
  const std::string text = SampleEdgeListFile("ooc_missing.txt");
  const std::string path = TempPath("ooc_missing.tlg");
  OocConvertOptions options = TightOptions();
  options.orientations = {{PermutationKind::kDescending, 0}};
  ASSERT_TRUE(OocConvertFile(text, path, options).ok());

  OocCountOptions copts;
  copts.spec = {PermutationKind::kUniform, 5};
  auto counted = OocCountTlg(path, copts);
  ASSERT_FALSE(counted.ok());
  EXPECT_EQ(counted.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace trilist::ooc
