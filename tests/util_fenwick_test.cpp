#include "src/util/fenwick_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(FenwickTest, EmptyTree) {
  FenwickTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Total(), 0);
}

TEST(FenwickTest, ZeroInitialized) {
  FenwickTree t(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.Total(), 0);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(t.Get(i), 0);
}

TEST(FenwickTest, BulkConstructionMatchesAdds) {
  const std::vector<int64_t> weights = {3, 1, 4, 1, 5, 9, 2, 6};
  FenwickTree bulk(weights);
  FenwickTree incremental(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    incremental.Add(i, weights[i]);
  }
  EXPECT_EQ(bulk.Total(), incremental.Total());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(bulk.PrefixSum(i), incremental.PrefixSum(i)) << i;
    EXPECT_EQ(bulk.Get(i), weights[i]);
  }
}

TEST(FenwickTest, PrefixSumsAreCumulative) {
  const std::vector<int64_t> weights = {2, 0, 7, 1};
  FenwickTree t(weights);
  EXPECT_EQ(t.PrefixSum(0), 2);
  EXPECT_EQ(t.PrefixSum(1), 2);
  EXPECT_EQ(t.PrefixSum(2), 9);
  EXPECT_EQ(t.PrefixSum(3), 10);
  EXPECT_EQ(t.Total(), 10);
}

TEST(FenwickTest, AddAndSetUpdate) {
  FenwickTree t(4);
  t.Add(1, 5);
  t.Add(3, 2);
  EXPECT_EQ(t.Total(), 7);
  t.Set(1, 1);
  EXPECT_EQ(t.Get(1), 1);
  EXPECT_EQ(t.Total(), 3);
  t.Add(1, -1);
  EXPECT_EQ(t.Get(1), 0);
  EXPECT_EQ(t.Total(), 2);
}

TEST(FenwickTest, SampleIndexPicksByPrefix) {
  // weights: [2, 0, 3, 1]; prefix sums [2, 2, 5, 6].
  FenwickTree t(std::vector<int64_t>{2, 0, 3, 1});
  EXPECT_EQ(t.SampleIndex(0), 0u);
  EXPECT_EQ(t.SampleIndex(1), 0u);
  EXPECT_EQ(t.SampleIndex(2), 2u);
  EXPECT_EQ(t.SampleIndex(3), 2u);
  EXPECT_EQ(t.SampleIndex(4), 2u);
  EXPECT_EQ(t.SampleIndex(5), 3u);
}

TEST(FenwickTest, SampleIndexNeverPicksZeroWeight) {
  FenwickTree t(std::vector<int64_t>{0, 5, 0, 0, 7, 0});
  for (int64_t target = 0; target < t.Total(); ++target) {
    const size_t idx = t.SampleIndex(target);
    EXPECT_TRUE(idx == 1 || idx == 4) << target;
  }
}

TEST(FenwickTest, WeightedSamplingMatchesProportions) {
  FenwickTree t(std::vector<int64_t>{1, 2, 3, 4});
  Rng rng(5);
  std::vector<int> hits(4, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++hits[t.SampleIndex(static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(t.Total()))))];
  }
  for (size_t i = 0; i < 4; ++i) {
    const double expected = kN * static_cast<double>(i + 1) / 10.0;
    EXPECT_NEAR(hits[i], expected, 5.0 * std::sqrt(expected)) << i;
  }
}

TEST(FenwickTest, RandomizedAgainstNaive) {
  Rng rng(31);
  const size_t n = 257;  // non-power-of-two size
  std::vector<int64_t> naive(n, 0);
  FenwickTree t(n);
  for (int step = 0; step < 2000; ++step) {
    const size_t i = rng.NextBounded(n);
    const int64_t delta = rng.NextInRange(-3, 10);
    if (naive[i] + delta < 0) continue;
    naive[i] += delta;
    t.Add(i, delta);
  }
  int64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += naive[i];
    ASSERT_EQ(t.PrefixSum(i), acc) << i;
    ASSERT_EQ(t.Get(i), naive[i]) << i;
  }
  // SampleIndex inverse property: for every target, the returned slot is
  // the first with PrefixSum > target.
  if (t.Total() > 0) {
    for (int64_t target : {int64_t{0}, t.Total() / 2, t.Total() - 1}) {
      const size_t idx = t.SampleIndex(target);
      EXPECT_GT(t.PrefixSum(idx), target);
      if (idx > 0) {
        EXPECT_LE(t.PrefixSum(idx - 1), target);
      }
    }
  }
}

TEST(FenwickTest, SingleSlot) {
  FenwickTree t(1);
  t.Add(0, 42);
  EXPECT_EQ(t.Total(), 42);
  EXPECT_EQ(t.SampleIndex(0), 0u);
  EXPECT_EQ(t.SampleIndex(41), 0u);
}

}  // namespace
}  // namespace trilist
