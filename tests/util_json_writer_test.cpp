#include "src/util/json_writer.h"

#include <gtest/gtest.h>

#include <string>

namespace trilist {
namespace {

/// Renders a single string value as a JSON document body (sans the
/// trailing newline Finish appends).
std::string Render(std::string_view value) {
  JsonWriter w;
  w.String(value);
  std::string out = std::move(w).Finish();
  EXPECT_EQ(out.back(), '\n');
  out.pop_back();
  return out;
}

TEST(JsonWriterTest, BasicDocumentShape) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", "x");
  w.Field("count", int64_t{3});
  w.Key("items");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"count\": 3,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(Render("he said \"hi\""), "\"he said \\\"hi\\\"\"");
  EXPECT_EQ(Render("C:\\tmp\\x"), "\"C:\\\\tmp\\\\x\"");
  // A value that is nothing but escapes.
  EXPECT_EQ(Render("\\\"\\"), "\"\\\\\\\"\\\\\"");
}

TEST(JsonWriterTest, EscapesWhitespaceControls) {
  EXPECT_EQ(Render("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
}

TEST(JsonWriterTest, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(Render(std::string_view("\x01\x1f\x00", 3)),
            "\"\\u0001\\u001f\\u0000\"");
  // 0x7f (DEL) is not below 0x20: JSON permits it raw.
  EXPECT_EQ(Render("\x7f"), "\"\x7f\"");
}

TEST(JsonWriterTest, PassesNonAsciiBytesThrough) {
  // UTF-8 payloads (file paths, graph names) travel byte-for-byte; JSON
  // strings are Unicode and need no escaping above 0x1f.
  EXPECT_EQ(Render("gr\xc3\xa4ph/\xe2\x88\x86"),
            "\"gr\xc3\xa4ph/\xe2\x88\x86\"");
}

TEST(JsonWriterTest, EscapesKeysLikeValues) {
  JsonWriter w;
  w.BeginObject();
  w.Field("a\"b\\c", "v");
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(),
            "{\n"
            "  \"a\\\"b\\\\c\": \"v\"\n"
            "}\n");
}

TEST(JsonWriterTest, NonFiniteDoublesRenderAsZero) {
  JsonWriter w;
  w.BeginArray();
  w.Double(1.0 / 0.0);
  w.Double(-1.0 / 0.0);
  w.Double(0.0 / 0.0);
  w.Double(0.5, 2);
  w.EndArray();
  EXPECT_EQ(std::move(w).Finish(),
            "[\n"
            "  0,\n"
            "  0,\n"
            "  0,\n"
            "  0.50\n"
            "]\n");
}

}  // namespace
}  // namespace trilist
