#include "src/algo/baselines.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/algo/brute_force.h"
#include "src/algo/cost.h"
#include "src/algo/edge_iterator.h"
#include "src/algo/registry.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/erdos_renyi.h"
#include "src/gen/residual_generator.h"
#include "src/graph/builder.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

Graph TestGraph(uint64_t seed) {
  Rng rng(seed);
  const DiscretePareto base(1.5, 6.0);
  const TruncatedDistribution fn(base, 20);
  std::vector<int64_t> degrees(200);
  for (auto& d : degrees) d = fn.Sample(&rng);
  MakeGraphic(&degrees);
  ResidualGenOptions options;
  options.strict = false;
  return GenerateExactDegree(degrees, &rng, nullptr, options).ValueOrDie();
}

std::vector<CanonicalTriangle> CollectCanonical(
    const std::vector<Triangle>& triangles) {
  std::vector<CanonicalTriangle> out;
  out.reserve(triangles.size());
  for (const Triangle& t : triangles) out.push_back({t.x, t.y, t.z});
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ClassicVertexIteratorTest, FindsAllTriangles) {
  const Graph g = TestGraph(1);
  CollectingSink sink;
  const OpCounts ops = RunClassicVertexIterator(g, &sink);
  EXPECT_EQ(CollectCanonical(sink.triangles()), NeighborPairTriangles(g));
  // Candidate checks: sum_i C(d_i, 2) exactly.
  double expected = 0.0;
  for (int64_t d : g.Degrees()) {
    expected += 0.5 * static_cast<double>(d) * static_cast<double>(d - 1);
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(ops.candidate_checks), expected);
}

TEST(ClassicVertexIteratorTest, PaysThreeCornersVsOrientedOne) {
  // Compared with the oriented+relabeled T1 under theta_U, the classic
  // iterator touches each wedge at all corners: its cost is the full
  // sum C(d,2), roughly 3x the uniform-orientation vertex iterator
  // (Section 5.3's factor-3 discussion).
  const Graph g = TestGraph(2);
  CollectingSink sink;
  const OpCounts classic = RunClassicVertexIterator(g, &sink);
  Rng rng(3);
  double oriented_sum = 0.0;
  const int kReps = 8;
  for (int r = 0; r < kReps; ++r) {
    const OrientedGraph og = OrientNamed(g, PermutationKind::kUniform, &rng);
    oriented_sum += MethodCostTotal(og, Method::kT1);
  }
  const double ratio =
      static_cast<double>(classic.candidate_checks) / (oriented_sum / kReps);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(NoRelabelT1Test, DoublesTheCandidateCount) {
  const Graph g = TestGraph(4);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og);
  CollectingSink relabeled;
  CollectingSink unordered;
  const OpCounts t1 = RunT1(og, arcs, &relabeled);
  const OpCounts t1_nr = RunT1NoRelabel(og, arcs, &unordered);
  // Same triangles...
  EXPECT_EQ(CollectCanonical(relabeled.triangles()).size(),
            CollectCanonical(unordered.triangles()).size());
  // ...at exactly twice the candidate checks (X(X-1) vs C(X,2)).
  EXPECT_EQ(t1_nr.candidate_checks, 2 * t1.candidate_checks);
}

TEST(NoRelabelE1Test, LocalScanCannotStopEarly) {
  const Graph g = TestGraph(5);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  CollectingSink a;
  CollectingSink b;
  const OpCounts e1 = RunE1(og, &a);
  const OpCounts e1_nr = RunE1NoRelabel(og, &b);
  EXPECT_EQ(a.Sorted(), b.Sorted());
  // local doubles (X^2 vs C(X,2)); remote unchanged.
  EXPECT_GE(e1_nr.local_scans, 2 * e1.local_scans);
  EXPECT_EQ(e1_nr.remote_scans, e1.remote_scans);
}

TEST(ForwardTest, MatchesReferenceTriangles) {
  const Graph g = TestGraph(6);
  CollectingSink sink;
  RunForward(g, &sink);
  EXPECT_EQ(CollectCanonical(sink.triangles()), NeighborPairTriangles(g));
}

TEST(ForwardTest, WorksOnCornerCases) {
  for (const Graph& g :
       {MakeEmpty(5), MakeComplete(3), MakeStar(10), MakeComplete(8)}) {
    CollectingSink sink;
    RunForward(g, &sink);
    EXPECT_EQ(CollectCanonical(sink.triangles()).size(),
              NeighborPairTriangles(g).size());
  }
}

TEST(CompactForwardTest, MatchesReferenceTriangles) {
  const Graph g = TestGraph(7);
  CollectingSink sink;
  RunCompactForward(g, &sink);
  EXPECT_EQ(CollectCanonical(sink.triangles()), NeighborPairTriangles(g));
}

TEST(CompactForwardTest, CostIsE1ClassUnderDescending) {
  const Graph g = TestGraph(8);
  CollectingSink sink;
  const OpCounts cf = RunCompactForward(g, &sink);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(cf.local_scans + cf.remote_scans),
      MethodCostTotal(og, Method::kE1));
}

TEST(ForwardTest, CheaperThanClassicOnHeavyTails) {
  const Graph g = TestGraph(9);
  CollectingSink s1;
  CollectingSink s2;
  const OpCounts fw = RunForward(g, &s1);
  const OpCounts classic = RunClassicVertexIterator(g, &s2);
  EXPECT_LT(fw.local_scans + fw.remote_scans, classic.candidate_checks);
}

}  // namespace
}  // namespace trilist
