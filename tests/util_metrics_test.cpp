#include "src/util/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace trilist {
namespace {

TEST(StageClockTest, AddAccumulatesAndPreservesFirstTouchOrder) {
  StageClock clock;
  clock.Add("order", 0.25);
  clock.Add("orient", 0.5);
  clock.Add("order", 0.25);
  EXPECT_DOUBLE_EQ(clock.WallOf("order"), 0.5);
  EXPECT_DOUBLE_EQ(clock.WallOf("orient"), 0.5);
  EXPECT_DOUBLE_EQ(clock.WallOf("missing"), 0.0);
  EXPECT_DOUBLE_EQ(clock.Total(), 1.0);
  ASSERT_EQ(clock.stages().size(), 2u);
  EXPECT_EQ(clock.stages()[0].name, "order");
  EXPECT_EQ(clock.stages()[0].calls, 2);
  EXPECT_EQ(clock.stages()[1].name, "orient");
}

TEST(StageClockTest, TimeReturnsBodyResult) {
  StageClock clock;
  const int v = clock.Time("stage", [] { return 7; });
  EXPECT_EQ(v, 7);
  EXPECT_EQ(clock.stages().size(), 1u);
  EXPECT_GE(clock.WallOf("stage"), 0.0);
  // void bodies compile and account too.
  clock.Time("stage", [] {});
  EXPECT_EQ(clock.stages()[0].calls, 2);
}

// A stage body that throws must still get its elapsed time attributed:
// an exception escaping "list" cannot silently vanish from the table.
TEST(StageClockTest, TimeAttributesOnThrow) {
  StageClock clock;
  EXPECT_THROW(clock.Time("explodes",
                          []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  ASSERT_EQ(clock.stages().size(), 1u);
  EXPECT_EQ(clock.stages()[0].name, "explodes");
  EXPECT_EQ(clock.stages()[0].calls, 1);
  EXPECT_GE(clock.stages()[0].wall_s, 0.0);
}

TEST(StageClockTest, ScopeOutlivesCallersNameView) {
  StageClock clock;
  {
    std::string name = "transient";
    StageClock::Scope scope(&clock, name);
    // The scope owns a copy; mutating or destroying the caller's string
    // must not corrupt the attribution in ~Scope.
    name = "overwritten";
  }
  EXPECT_EQ(clock.stages().size(), 1u);
  EXPECT_EQ(clock.stages()[0].name, "transient");
}

TEST(StageClockTest, MergeAndMergeMin) {
  StageClock a;
  a.Add("x", 1.0);
  a.Add("y", 2.0);
  StageClock b;
  b.Add("y", 0.5);
  b.Add("z", 4.0);

  StageClock merged = a;
  merged.Merge(b);
  EXPECT_DOUBLE_EQ(merged.WallOf("x"), 1.0);
  EXPECT_DOUBLE_EQ(merged.WallOf("y"), 2.5);
  EXPECT_DOUBLE_EQ(merged.WallOf("z"), 4.0);

  StageClock best = a;
  best.MergeMin(b);
  EXPECT_DOUBLE_EQ(best.WallOf("x"), 1.0);
  EXPECT_DOUBLE_EQ(best.WallOf("y"), 0.5);
  EXPECT_DOUBLE_EQ(best.WallOf("z"), 4.0);
}

TEST(ResourceGaugeTest, PeakRssReportsOrDegrades) {
  const size_t rss = PeakRssBytes();
#ifdef __linux__
  // VmHWM exists on any Linux this project targets; a running test binary
  // has touched at least a page.
  EXPECT_GT(rss, 0u);
#else
  EXPECT_GE(rss, 0u);
#endif
}

TEST(ResourceGaugeTest, ProcessCpuSecondsIsMonotone) {
  const double before = ProcessCpuSeconds();
  EXPECT_GE(before, 0.0);
  // Burn a little CPU; the counter must not go backwards.
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) {
    sink = sink + static_cast<double>(i) * 0.5;
  }
  const double after = ProcessCpuSeconds();
  EXPECT_GE(after, before);
}

TEST(CpuGaugeTest, UtilizationDegenerateInputsAreZero) {
  const CpuGauge gauge;
  EXPECT_EQ(gauge.UtilizationOver(0.0, 4), 0.0);
  EXPECT_EQ(gauge.UtilizationOver(-1.0, 4), 0.0);
  EXPECT_EQ(gauge.UtilizationOver(1.0, 0), 0.0);
  EXPECT_EQ(gauge.UtilizationOver(1.0, -2), 0.0);
}

TEST(CpuGaugeTest, UtilizationScalesWithThreadDivisor) {
  CpuGauge gauge;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + static_cast<double>(i) * 0.5;
  }
  // CPU elapsed only grows between the two samples, so spreading the
  // earlier sample over 4x the thread-seconds bounds the later one.
  const double u4 = gauge.UtilizationOver(1.0, 4);
  const double u1 = gauge.UtilizationOver(1.0, 1);
  EXPECT_GE(u4, 0.0);
  EXPECT_GE(u1, 4.0 * u4);
}

}  // namespace
}  // namespace trilist
