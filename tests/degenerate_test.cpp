#include "src/order/degenerate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/graph/oriented_graph.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

int64_t MaxOutDegree(const OrientedGraph& og) {
  int64_t best = 0;
  for (size_t i = 0; i < og.num_nodes(); ++i) {
    best = std::max(best, og.OutDegree(static_cast<NodeId>(i)));
  }
  return best;
}

TEST(DegeneracyTest, KnownValues) {
  EXPECT_EQ(Degeneracy(MakeEmpty(5)), 0);
  EXPECT_EQ(Degeneracy(MakePath(10)), 1);   // trees are 1-degenerate
  EXPECT_EQ(Degeneracy(MakeCycle(10)), 2);
  EXPECT_EQ(Degeneracy(MakeComplete(6)), 5);
  EXPECT_EQ(Degeneracy(MakeStar(100)), 1);
  EXPECT_EQ(Degeneracy(MakeBowTie(4)), 3);  // two K4's sharing a node
}

TEST(DegenerateLabelsTest, IsBijection) {
  Rng rng(3);
  const Graph g = GenerateGnp(200, 0.05, &rng);
  const auto labels = DegenerateLabels(g);
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId l : labels) {
    ASSERT_LT(l, g.num_nodes());
    EXPECT_FALSE(seen[l]);
    seen[l] = true;
  }
}

TEST(DegenerateLabelsTest, MaxOutDegreeEqualsDegeneracy) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = GenerateGnp(150, 0.04 + 0.02 * trial, &rng);
    const OrientedGraph og =
        OrientedGraph::FromLabels(g, DegenerateLabels(g));
    EXPECT_EQ(MaxOutDegree(og), Degeneracy(g)) << trial;
  }
}

TEST(DegenerateLabelsTest, BeatsOrTiesDescendingOnMaxOutDegree) {
  // The degenerate orientation minimizes max out-degree over all
  // orientations, so no other labeling can do better.
  Rng rng(7);
  const Graph g = GenerateGnp(150, 0.05, &rng);
  const OrientedGraph degen =
      OrientedGraph::FromLabels(g, DegenerateLabels(g));
  // Compare against a few arbitrary labelings.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng other(seed);
    std::vector<NodeId> labels(g.num_nodes());
    for (size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<NodeId>(i);
    }
    for (size_t i = labels.size(); i > 1; --i) {
      std::swap(labels[i - 1], labels[other.NextBounded(i)]);
    }
    const OrientedGraph og = OrientedGraph::FromLabels(g, labels);
    EXPECT_LE(MaxOutDegree(degen), MaxOutDegree(og)) << seed;
  }
}

TEST(DegenerateLabelsTest, StarHubRemovedLast) {
  // In a star, leaves peel off first; the hub's out-degree must be <= 1.
  const Graph g = MakeStar(50);
  const OrientedGraph og =
      OrientedGraph::FromLabels(g, DegenerateLabels(g));
  EXPECT_EQ(MaxOutDegree(og), 1);
}

TEST(DegenerateLabelsTest, EmptyAndTinyGraphs) {
  EXPECT_TRUE(DegenerateLabels(MakeEmpty(0)).empty());
  EXPECT_EQ(DegenerateLabels(MakeEmpty(1)).size(), 1u);
  const auto labels = DegenerateLabels(MakeComplete(2));
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_NE(labels[0], labels[1]);
}

}  // namespace
}  // namespace trilist
