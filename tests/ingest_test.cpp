#include "src/graph/ingest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/gen/erdos_renyi.h"
#include "src/graph/io.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(IngestTest, SparseIdsRelabeledByAscendingOriginalId) {
  auto r = IngestEdgeList("10 20\n20 1000000\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->graph.num_nodes(), 3u);
  EXPECT_EQ(r->graph.EdgeList(), (std::vector<Edge>{{0, 1}, {1, 2}}));
  EXPECT_EQ(r->original_id, (std::vector<uint64_t>{10, 20, 1000000}));
  EXPECT_TRUE(r->stats.relabeled);
  EXPECT_EQ(r->stats.max_input_id, 1000000u);
}

TEST(IngestTest, CompactInputKeepsOriginalNumbering) {
  auto r = IngestEdgeList("0 1\n1 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->stats.relabeled);
  EXPECT_EQ(r->original_id, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(IngestTest, BothDirectionDuplicatesCollapse) {
  auto r = IngestEdgeList("0 1\n1 0\n0 1\n1 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.num_edges(), 2u);
  EXPECT_EQ(r->stats.edges_in, 4u);
  EXPECT_EQ(r->stats.duplicates_dropped, 2u);
}

TEST(IngestTest, SelfLoopsDroppedAndCounted) {
  // Node 5 appears only in a self-loop: the loop record is dropped, but
  // its endpoint still names a node, so 5 survives as isolated. The ID
  // universe {0, 1, 5} is sparse, hence relabeled.
  auto r = IngestEdgeList("0 0\n0 1\n5 5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.self_loops_dropped, 2u);
  EXPECT_EQ(r->graph.num_nodes(), 3u);
  EXPECT_EQ(r->graph.num_edges(), 1u);
  EXPECT_TRUE(r->stats.relabeled);
  EXPECT_EQ(r->original_id, (std::vector<uint64_t>{0, 1, 5}));
  EXPECT_EQ(r->graph.Degree(2), 0);
}

TEST(IngestTest, SelfLoopOnlyInputKeepsNodes) {
  // An input consisting solely of self-loops is an edgeless graph over
  // the loop endpoints, not an empty graph.
  auto r = IngestEdgeList("0 0\n1 1\n2 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.num_nodes(), 3u);
  EXPECT_EQ(r->graph.num_edges(), 0u);
  EXPECT_EQ(r->stats.self_loops_dropped, 3u);
  EXPECT_FALSE(r->stats.relabeled);
}

TEST(IngestTest, MessyInputNormalizesToCleanEquivalent) {
  // CRLF endings, tab separators, trailing columns, comments, blank
  // lines, duplicates and self-loops — all noise around the same graph.
  const std::string messy =
      "# a comment\r\n"
      "0\t1\r\n"
      "1 0 0.75 1234567\n"
      "\r\n"
      "   \n"
      "2 2\n"
      "% another comment\n"
      "1 2 \t\r\n"
      "0 2\n";
  auto noisy = IngestEdgeList(messy);
  auto clean = IngestEdgeList("0 1\n0 2\n1 2\n");
  ASSERT_TRUE(noisy.ok()) << noisy.status().ToString();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(noisy->graph.EdgeList(), clean->graph.EdgeList());
  EXPECT_EQ(noisy->stats.comment_lines, 2u);
  EXPECT_EQ(noisy->stats.blank_lines, 2u);
  EXPECT_EQ(noisy->stats.self_loops_dropped, 1u);
  EXPECT_EQ(noisy->stats.duplicates_dropped, 1u);
}

TEST(IngestTest, ParallelIngestIsBitIdenticalToSerial) {
  // A large noisy input (every edge emitted in both directions plus
  // periodic self-loops) spanning multiple parser chunks.
  Rng rng(11);
  const Graph g = GenerateGnp(800, 0.02, &rng);
  std::ostringstream text;
  text << "# synthetic noisy dump\n";
  size_t k = 0;
  for (const Edge& e : g.EdgeList()) {
    text << e.first << " " << e.second << "\n";
    text << e.second << "\t" << e.first << "\r\n";
    if (++k % 97 == 0) text << e.first << " " << e.first << "\n";
  }
  const std::string input = text.str();
  auto serial = IngestEdgeList(input);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->graph.EdgeList(), g.EdgeList());
  for (int threads : {2, 4, 8}) {
    IngestOptions opts;
    opts.threads = threads;
    auto parallel = IngestEdgeList(input, opts);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    EXPECT_EQ(parallel->graph.EdgeList(), serial->graph.EdgeList())
        << "threads=" << threads;
    EXPECT_EQ(parallel->original_id, serial->original_id);
    EXPECT_EQ(parallel->stats.edges_in, serial->stats.edges_in);
    EXPECT_EQ(parallel->stats.duplicates_dropped,
              serial->stats.duplicates_dropped);
    EXPECT_EQ(parallel->stats.self_loops_dropped,
              serial->stats.self_loops_dropped);
    EXPECT_EQ(parallel->stats.lines, serial->stats.lines);
  }
}

TEST(IngestTest, MalformedLineReportsGlobalLineNumber) {
  // Input long enough to split into several chunks even at 4 threads; the
  // bad record's reported line number must be global, not chunk-local.
  std::ostringstream text;
  const size_t kBadLine = 2500;
  for (size_t i = 1; i <= 3000; ++i) {
    if (i == kBadLine) {
      text << "12abc 7\n";
    } else {
      text << i << " " << (i + 1) << "\n";
    }
  }
  const std::string input = text.str();
  for (int threads : {1, 4}) {
    IngestOptions opts;
    opts.threads = threads;
    auto r = IngestEdgeList(input, opts);
    ASSERT_FALSE(r.ok()) << "threads=" << threads;
    EXPECT_NE(r.status().message().find("line " +
                                        std::to_string(kBadLine)),
              std::string::npos)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find("12abc"), std::string::npos);
  }
}

TEST(IngestTest, RejectsNonNumericAndPartialRecords) {
  for (const char* bad : {"0 x\n", "0\n", "0 1.5\n", "-1 2\n", "a b\n"}) {
    auto r = IngestEdgeList(bad);
    EXPECT_FALSE(r.ok()) << "input: " << bad;
  }
}

TEST(IngestTest, HeaderPreservesIsolatedNodes) {
  auto r = IngestEdgeList("# nodes 5\n0 1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.num_nodes(), 5u);
  EXPECT_EQ(r->graph.num_edges(), 1u);
  EXPECT_EQ(r->original_id.size(), 5u);
}

TEST(IngestTest, HeaderIgnoredWhenIdsAreSparse) {
  // Sparse IDs force relabeling; the header's node count refers to the
  // original numbering and must not leak into the compacted graph.
  auto r = IngestEdgeList("# nodes 3\n10 20\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.relabeled);
  EXPECT_EQ(r->graph.num_nodes(), 2u);
}

TEST(IngestTest, EmptyAndCommentOnlyInputs) {
  auto empty = IngestEdgeList("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->graph.num_nodes(), 0u);
  auto comments = IngestEdgeList("# nothing\n% here\n\n");
  ASSERT_TRUE(comments.ok());
  EXPECT_EQ(comments->graph.num_nodes(), 0u);
  EXPECT_EQ(comments->stats.comment_lines, 2u);
}

TEST(IngestTest, FileVariantMatchesInMemoryParse) {
  const std::string path = ::testing::TempDir() + "/ingest_file.txt";
  const std::string input = "3 4\n4 5\n3 5\n";
  std::ofstream(path) << input;
  auto from_file = IngestEdgeListFile(path);
  auto from_text = IngestEdgeList(input);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(from_file->graph.EdgeList(), from_text->graph.EdgeList());
  EXPECT_EQ(from_file->original_id, from_text->original_id);
  std::remove(path.c_str());
  EXPECT_FALSE(IngestEdgeListFile("/nonexistent/edges.txt").ok());
}

TEST(IngestTest, RoundTripsThroughWriterOutput) {
  // Ingest must be a superset of the strict reader: our own writer's
  // output parses to the same graph.
  Rng rng(23);
  const Graph g = GenerateGnp(200, 0.05, &rng);
  std::ostringstream out;
  WriteEdgeList(g, &out);
  auto r = IngestEdgeList(out.str());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.EdgeList(), g.EdgeList());
  EXPECT_EQ(r->graph.num_nodes(), g.num_nodes());
  EXPECT_FALSE(r->stats.relabeled);
}

TEST(IngestTest, StatsSummaryMentionsTheCounts) {
  auto r = IngestEdgeList("0 0\n0 1\n1 0\n");
  ASSERT_TRUE(r.ok());
  const std::string summary = r->stats.Summary();
  EXPECT_FALSE(summary.empty());
  EXPECT_NE(summary.find("1"), std::string::npos);
}

}  // namespace
}  // namespace trilist
