#include "src/run/run_report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/run/runner.h"
#include "src/util/json_writer.h"

namespace trilist {
namespace {

/// A fully populated report with hand-picked values. Every double is a
/// binary fraction so the fixed-point rendering is exact on any platform,
/// which is what lets the JSON be golden-tested byte for byte.
RunReport MakeFixedReport() {
  RunReport r;
  r.source = "pareto(n=100, alpha=1.7, root, residual)";
  r.num_nodes = 100;
  r.num_edges = 250;
  r.order = "theta_D";
  r.orient_seed = 7;
  r.cached_orientation = false;
  r.threads = 2;
  r.requested_threads = 0;  // "auto" request resolved to 2
  r.repeats = 3;
  r.intersect_backend = "bitmap";
  r.simd_level = "avx2";
  r.build_version = "1.0.0";
  r.build_git_hash = "abcdef123456";
  r.build_compiler = "TestCompiler 0.0";
  r.build_type = "TestBuild";

  r.plan.planned = true;
  r.plan.auto_method = true;
  r.plan.auto_order = true;
  r.plan.auto_intersect = false;
  r.plan.methods = {"T1"};
  r.plan.order = "theta_D";
  r.plan.intersect = "bitmap";
  r.plan.predicted_ops = 1024.5;      // binary fractions: exact rendering
  r.plan.predicted_cost = 2048.25;
  r.plan.measured_ops = 1000.0;
  r.plan.measured_cost = 2000.5;
  r.plan.candidates = 20;

  r.stages.Add("generate", 0.015625);
  r.stages.Add("order", 0.0078125);
  r.stages.Add("orient", 0.03125);
  r.stages.Add("arcs", 0.00390625);
  r.stages.Add("list", 0.125);

  MethodReport m;
  m.method = Method::kT1;
  m.triangles = 42;
  m.ops.candidate_checks = 1000;
  m.ops.local_scans = 11;
  m.ops.remote_scans = 22;
  m.ops.merge_comparisons = 33;
  m.ops.hash_inserts = 44;
  m.ops.lookups = 55;
  m.ops.binary_searches = 66;
  m.ops.triangles = 42;
  m.formula_cost = 1000.5;
  m.wall_s = 0.0625;
  m.wall_total_s = 0.1875;
  m.parallel = true;
  m.intersect_backend = "none";
  r.methods.push_back(m);

  obs::DegreeProfile profile;
  profile.method = Method::kT1;
  obs::DegreeBucket b0;
  b0.bucket = 0;
  profile.buckets.push_back(b0);
  obs::DegreeBucket b1;
  b1.bucket = 1;
  b1.d_min = 1;
  b1.d_max = 1;
  b1.nodes = 30;
  profile.buckets.push_back(b1);
  obs::DegreeBucket b2;
  b2.bucket = 2;
  b2.d_min = 2;
  b2.d_max = 3;
  b2.nodes = 70;
  b2.measured_ops = 768;
  b2.predicted_ops = 512.0;  // residual renders exactly 0.500000
  profile.buckets.push_back(b2);
  profile.total_measured = 768;
  profile.total_predicted = 512.0;
  r.degree_profiles.push_back(profile);

  r.partitioned = true;
  r.mem_budget_bytes = 4194304;
  r.io_partitions = 2;
  r.io.passes = 2;
  r.io.bytes_loaded = 2048;
  r.io.bytes_streamed = 4096;

  r.peak_rss_bytes = 1048576;
  r.cpu_s = 0.25;
  r.utilization = 0.875;
  return r;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The exporter's byte-exact contract: key order, indentation and number
// formatting are all part of the schema consumed by external tooling.
// If this fails after an intentional schema change, bump
// kRunReportSchemaVersion and regenerate the golden from the test's
// failure artifact.
TEST(RunReportJson, MatchesGoldenFile) {
  const std::string golden_path =
      std::string(TRILIST_TESTDATA_DIR) + "/run_report_golden.json";
  const std::string expected = ReadFile(golden_path);
  const std::string actual = MakeFixedReport().ToJson();
  if (expected != actual) {
    const std::string dump =
        ::testing::TempDir() + "/run_report_actual.json";
    std::ofstream(dump, std::ios::binary) << actual;
    FAIL() << "JSON schema drifted from " << golden_path
           << "; actual written to " << dump;
  }
}

TEST(RunReportJson, SchemaVersionIsStamped) {
  const std::string json = MakeFixedReport().ToJson();
  EXPECT_NE(json.find("\"schema\": \"trilist.run_report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": " +
                      std::to_string(kRunReportSchemaVersion)),
            std::string::npos);
}

// A real pipeline execution must populate every top-level schema section
// and one stage entry per pipeline phase.
TEST(RunReportJson, LivePipelineEmitsAllSections) {
  RunSpec spec;
  GenerateSpec gen;
  gen.n = 500;
  spec.source = GraphSource::FromGenerator(gen);
  spec.methods = {Method::kT1, Method::kE1};
  auto report = RunPipeline(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = report->ToJson();
  for (const char* key :
       {"\"build\"", "\"git_hash\"", "\"graph\"", "\"orientation\"",
        "\"exec\"", "\"requested_threads\"", "\"intersect\"",
        "\"simd_level\"", "\"io\"", "\"partitioned\"",
        "\"mem_budget_bytes\"", "\"bytes_loaded\"", "\"bytes_streamed\"",
        "\"stages\"", "\"methods\"",
        "\"degree_profiles\"", "\"resources\"", "\"paper_cost\"",
        "\"formula_cost\"", "\"candidate_checks\"", "\"peak_rss_bytes\"",
        "\"utilization\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  for (const char* stage :
       {"\"generate\"", "\"order\"", "\"orient\"", "\"arcs\"",
        "\"list\""}) {
    EXPECT_NE(json.find(stage), std::string::npos)
        << "missing stage " << stage;
  }
}

TEST(RunReportTable, RendersStagesAndMethods) {
  std::ostringstream out;
  MakeFixedReport().PrintTable(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("T1"), std::string::npos);
  EXPECT_NE(text.find("order"), std::string::npos);
  EXPECT_NE(text.find("residual"), std::string::npos);
  EXPECT_NE(text.find("peak RSS"), std::string::npos);
  EXPECT_NE(text.find("out-of-core"), std::string::npos);
}

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Field("text", "a\"b\\c\n");
  w.Key("list");
  w.BeginArray();
  w.Int(-1);
  w.String("x");
  w.Bool(false);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(),
            "{\n"
            "  \"text\": \"a\\\"b\\\\c\\n\",\n"
            "  \"list\": [\n"
            "    -1,\n"
            "    \"x\",\n"
            "    false\n"
            "  ]\n"
            "}\n");
}

}  // namespace
}  // namespace trilist
