#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/spread.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/simple_distributions.h"
#include "src/degree/truncated.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// Proposition 3 / AMRC behavior (Definition 1).
// ---------------------------------------------------------------------------

TEST(AmrcTest, FiniteVarianceKeepsMaxDegreeBelowRoot) {
  // Proposition 3 with c = 1/2: E[D^2] < inf implies P(L_n > sqrt(n)) -> 0.
  // At test-affordable n the decay is only visible for fast tails
  // (n P(D > sqrt(n)) ~ beta^alpha n^{1 - alpha/2}), so use alpha = 4.
  const DiscretePareto light(4.0, 3.0);
  Rng rng(3);
  auto exceed_fraction = [&](size_t n, int reps) {
    int exceed = 0;
    const double root = std::sqrt(static_cast<double>(n));
    for (int r = 0; r < reps; ++r) {
      int64_t max_degree = 0;
      for (size_t i = 0; i < n; ++i) {
        max_degree = std::max(max_degree, light.Sample(&rng));
      }
      if (static_cast<double>(max_degree) > root) ++exceed;
    }
    return static_cast<double>(exceed) / reps;
  };
  const double small = exceed_fraction(300, 80);
  const double large = exceed_fraction(30000, 80);
  EXPECT_LT(large, small);
  EXPECT_LT(large, 0.06);
  EXPECT_GT(small, 0.10);  // the contrast is real, not vacuous
}

TEST(AmrcTest, HeavyTailViolatesRootBoundUnderLinearTruncation) {
  // alpha = 1.2 with linear truncation: the max degree lands far above
  // sqrt(n) essentially always — the unconstrained case of Section 3.1.
  const DiscretePareto heavy(1.2, 6.0);
  Rng rng(5);
  const size_t n = 20000;
  const TruncatedDistribution fn(heavy, static_cast<int64_t>(n) - 1);
  int exceed = 0;
  const int kReps = 20;
  for (int r = 0; r < kReps; ++r) {
    int64_t max_degree = 0;
    for (size_t i = 0; i < n; ++i) {
      max_degree = std::max(max_degree, fn.Sample(&rng));
    }
    if (static_cast<double>(max_degree) >
        std::sqrt(static_cast<double>(n))) {
      ++exceed;
    }
  }
  EXPECT_GT(exceed, kReps / 2);
}

TEST(AmrcTest, RootTruncationIsDeterministicallyConstrained) {
  const DiscretePareto heavy(1.2, 6.0);
  Rng rng(7);
  const size_t n = 10000;
  const TruncatedDistribution fn(
      heavy, TruncationPoint(TruncationKind::kRoot,
                             static_cast<int64_t>(n)));
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LE(static_cast<double>(fn.Sample(&rng)),
              std::sqrt(static_cast<double>(n)));
  }
}

// ---------------------------------------------------------------------------
// Spread identities (Section 4.1).
// ---------------------------------------------------------------------------

TEST(SpreadIdentityTest, MeanOfSpreadIsSecondMomentRatio) {
  // With w(x) = x, E[S] = E[D^2] / E[D] (the size-bias identity behind
  // the inspection paradox).
  const DiscretePareto base(2.5, 45.0);
  const int64_t t = 5000;
  const TruncatedDistribution fn(base, t);
  double ed = 0.0;
  double ed2 = 0.0;
  for (int64_t k = 1; k <= t; ++k) {
    const double p = fn.Pmf(k);
    ed += static_cast<double>(k) * p;
    ed2 += static_cast<double>(k) * static_cast<double>(k) * p;
  }
  const auto j = SpreadTable(fn, t);
  // E[S] = sum_k k (J(k) - J(k-1)).
  double es = j[0];
  for (int64_t k = 2; k <= t; ++k) {
    es += static_cast<double>(k) *
          (j[static_cast<size_t>(k - 1)] - j[static_cast<size_t>(k - 2)]);
  }
  EXPECT_NEAR(es, ed2 / ed, es * 1e-9);
}

TEST(SpreadIdentityTest, GeometricSpreadMatchesSizeBiasedForm) {
  // For any discrete D with w(x)=x, P(S=k) = k P(D=k) / E[D]; verify the
  // full PMF for the geometric.
  const GeometricDegree d(0.25);
  const int64_t t = 200;
  const TruncatedDistribution fn(d, t);
  double ed = 0.0;
  for (int64_t k = 1; k <= t; ++k) ed += static_cast<double>(k) * fn.Pmf(k);
  const auto j = SpreadTable(fn, t);
  double prev = 0.0;
  for (int64_t k = 1; k <= 50; ++k) {
    const double spread_pmf = j[static_cast<size_t>(k - 1)] - prev;
    prev = j[static_cast<size_t>(k - 1)];
    EXPECT_NEAR(spread_pmf, static_cast<double>(k) * fn.Pmf(k) / ed, 1e-12)
        << k;
  }
}

TEST(SpreadIdentityTest, SpreadOfConstantIsDegenerate) {
  const ConstantDegree d(6);
  const auto j = SpreadTable(d, 6);
  for (size_t k = 0; k < 5; ++k) EXPECT_EQ(j[k], 0.0);
  EXPECT_DOUBLE_EQ(j[5], 1.0);
}

// ---------------------------------------------------------------------------
// Degree sequences at scale: graphicality frequency (Section 1.2).
// ---------------------------------------------------------------------------

TEST(GraphicalityFrequencyTest, RootTruncatedSequencesAlmostAlwaysGraphic) {
  // The paper assumes D_n is graphic w.p. 1 - o(1) or fixable by one
  // edge. Empirically: under root truncation, every sampled sequence with
  // an even sum should already be graphic.
  const DiscretePareto base(1.5, 15.0);
  Rng rng(11);
  const size_t n = 5000;
  const TruncatedDistribution fn(
      base, TruncationPoint(TruncationKind::kRoot,
                            static_cast<int64_t>(n)));
  int even_and_graphic = 0;
  int even_total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    DegreeSequence seq = DegreeSequence::SampleIid(fn, n, &rng);
    if (!seq.HasEvenSum()) continue;
    ++even_total;
    if (IsGraphic(seq.degrees())) ++even_and_graphic;
  }
  EXPECT_EQ(even_and_graphic, even_total);
  EXPECT_GT(even_total, 5);  // sanity: parity is ~50/50
}

}  // namespace
}  // namespace trilist
