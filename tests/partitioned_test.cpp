#include "src/xm/partitioned.h"

#include <gtest/gtest.h>

#include "src/algo/edge_iterator.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/erdos_renyi.h"
#include "src/gen/residual_generator.h"
#include "src/graph/builder.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

Graph HeavyGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  const DiscretePareto base(1.7, 10.0);
  const TruncatedDistribution fn(base, 40);
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  MakeGraphic(&degrees);
  ResidualGenOptions options;
  options.strict = false;
  return GenerateExactDegree(degrees, &rng, nullptr, options).ValueOrDie();
}

TEST(PartitioningTest, CoversLabelSpaceContiguously) {
  const Graph g = HeavyGraph(500, 1);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  for (size_t k : {1u, 2u, 3u, 7u, 100u}) {
    const Partitioning parts(og, k);
    EXPECT_GE(parts.num_partitions(), 1u);
    EXPECT_LE(parts.num_partitions(), k);
    EXPECT_EQ(parts.lower(0), 0u);
    EXPECT_EQ(parts.upper(parts.num_partitions() - 1), og.num_nodes());
    for (size_t p = 0; p + 1 < parts.num_partitions(); ++p) {
      EXPECT_EQ(parts.upper(p), parts.lower(p + 1));
      EXPECT_LT(parts.lower(p), parts.upper(p));
    }
  }
}

TEST(PartitioningTest, MemoryBudgetDerivesK) {
  const Graph g = HeavyGraph(500, 2);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  const auto total =
      static_cast<int64_t>(og.num_arcs() * sizeof(NodeId));
  const Partitioning one = Partitioning::ForMemoryBudget(og, total * 2);
  EXPECT_EQ(one.num_partitions(), 1u);
  const Partitioning several =
      Partitioning::ForMemoryBudget(og, total / 4 + 1);
  EXPECT_GE(several.num_partitions(), 3u);
  EXPECT_LE(several.num_partitions(), 5u);
}

class PartitionedEquivalenceTest : public ::testing::TestWithParam<size_t> {
};

TEST_P(PartitionedEquivalenceTest, E1MatchesInMemory) {
  const size_t k = GetParam();
  const Graph g = HeavyGraph(600, 3);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  CollectingSink reference;
  const OpCounts mem = RunE1(og, &reference);
  const Partitioning parts(og, k);
  CollectingSink partitioned;
  IoStats io;
  const OpCounts xm = RunPartitionedE1(og, parts, &partitioned, &io);
  EXPECT_EQ(partitioned.Sorted(), reference.Sorted());
  EXPECT_EQ(xm.local_scans, mem.local_scans);
  EXPECT_EQ(xm.remote_scans, mem.remote_scans);
  EXPECT_EQ(xm.triangles, mem.triangles);
  // I/O ledger: one resident load of the whole graph across passes, one
  // full stream per pass.
  const auto graph_bytes =
      static_cast<int64_t>(og.num_arcs() * sizeof(NodeId));
  EXPECT_EQ(io.passes, static_cast<int64_t>(parts.num_partitions()));
  EXPECT_EQ(io.bytes_loaded, graph_bytes);
  EXPECT_EQ(io.bytes_streamed, io.passes * graph_bytes);
}

TEST_P(PartitionedEquivalenceTest, E2MatchesInMemory) {
  const size_t k = GetParam();
  const Graph g = HeavyGraph(600, 4);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  CollectingSink reference;
  const OpCounts mem = RunE2(og, &reference);
  const Partitioning parts(og, k);
  CollectingSink partitioned;
  IoStats io;
  const OpCounts xm = RunPartitionedE2(og, parts, &partitioned, &io);
  EXPECT_EQ(partitioned.Sorted(), reference.Sorted());
  EXPECT_EQ(xm.local_scans, mem.local_scans);
  EXPECT_EQ(xm.remote_scans, mem.remote_scans);
  EXPECT_EQ(xm.triangles, mem.triangles);
  EXPECT_EQ(io.bytes_loaded,
            static_cast<int64_t>(og.num_arcs() * sizeof(NodeId)));
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionedEquivalenceTest,
                         ::testing::Values(1, 2, 3, 8, 64));

TEST(PartitionedTest, EmptyGraph) {
  const OrientedGraph og =
      OrientNamed(MakeEmpty(0), PermutationKind::kAscending);
  const Partitioning parts(og, 4);
  CollectingSink sink;
  IoStats io;
  const OpCounts ops = RunPartitionedE1(og, parts, &sink, &io);
  EXPECT_EQ(ops.triangles, 0);
  EXPECT_EQ(io.bytes_loaded, 0);
}

TEST(PartitionedTest, MorePartitionsMoreStreaming) {
  // The I/O trade-off the paper's future work targets: streamed bytes
  // grow linearly with K while resident loads stay constant.
  const Graph g = HeavyGraph(800, 5);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  CollectingSink sink1;
  CollectingSink sink8;
  IoStats io1;
  IoStats io8;
  RunPartitionedE1(og, Partitioning(og, 1), &sink1, &io1);
  RunPartitionedE1(og, Partitioning(og, 8), &sink8, &io8);
  EXPECT_EQ(io1.bytes_loaded, io8.bytes_loaded);
  EXPECT_EQ(io8.bytes_streamed, io8.passes * io1.bytes_streamed);
  EXPECT_GT(io8.passes, io1.passes);
}

}  // namespace
}  // namespace trilist
