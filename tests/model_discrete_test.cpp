#include "src/core/discrete_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/fast_model.h"
#include "src/core/h_function.h"
#include "src/core/pmf_table.h"
#include "src/degree/pareto.h"
#include "src/degree/simple_distributions.h"
#include "src/degree/truncated.h"

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// h(x) and g(x) basics.
// ---------------------------------------------------------------------------

TEST(HFunctionTest, Table4Values) {
  // Table 4 of the paper at x = 0.25.
  EXPECT_DOUBLE_EQ(EvalH(Method::kT1, 0.25), 0.25 * 0.25 / 2.0);
  EXPECT_DOUBLE_EQ(EvalH(Method::kT2, 0.25), 0.25 * 0.75);
  EXPECT_DOUBLE_EQ(EvalH(Method::kE1, 0.25), 0.25 * (2.0 - 0.25) / 2.0);
  EXPECT_DOUBLE_EQ(EvalH(Method::kE4, 0.25),
                   (0.25 * 0.25 + 0.75 * 0.75) / 2.0);
}

TEST(HFunctionTest, EdgeIteratorsAreSumsOfVertexClasses) {
  for (double x : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    EXPECT_NEAR(EvalH(Method::kE1, x),
                EvalH(Method::kT1, x) + EvalH(Method::kT2, x), 1e-15);
    EXPECT_NEAR(EvalH(Method::kE4, x),
                EvalH(Method::kT1, x) + EvalH(Method::kT3, x), 1e-15);
    EXPECT_NEAR(EvalH(Method::kE3, x),
                EvalH(Method::kT3, x) + EvalH(Method::kT2, x), 1e-15);
  }
}

TEST(HFunctionTest, T2IsSymmetric) {
  for (double x : {0.1, 0.3, 0.45}) {
    EXPECT_NEAR(EvalH(Method::kT2, x), EvalH(Method::kT2, 1.0 - x), 1e-15);
    EXPECT_NEAR(EvalH(Method::kE4, x), EvalH(Method::kE4, 1.0 - x), 1e-15);
  }
}

TEST(HFunctionTest, MeanHUniformClosedForms) {
  // E[h(U)] = 1/6 for vertex/lookup iterators and 1/3 for SEI (Eq. 31).
  EXPECT_DOUBLE_EQ(MeanHUniform(Method::kT1), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(MeanHUniform(Method::kL4), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(MeanHUniform(Method::kE1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MeanHUniform(Method::kE4), 1.0 / 3.0);
}

TEST(HFunctionTest, UniformXiIntegralMatchesClosedForm) {
  const XiMap uniform = XiMap::Uniform();
  for (Method m : AllMethods()) {
    EXPECT_NEAR(uniform.ExpectH(HOf(m), 0.37), MeanHUniform(m), 1e-9)
        << MethodName(m);
  }
}

TEST(GFunctionTest, Values) {
  EXPECT_DOUBLE_EQ(GFunction(1.0), 0.0);
  EXPECT_DOUBLE_EQ(GFunction(2.0), 2.0);
  EXPECT_DOUBLE_EQ(GFunction(10.0), 90.0);
}

// ---------------------------------------------------------------------------
// XiMap algebra.
// ---------------------------------------------------------------------------

TEST(XiMapTest, NamedMapsEvaluate) {
  const auto h = [](double x) { return x; };  // identity probe
  EXPECT_DOUBLE_EQ(XiMap::Ascending().ExpectH(h, 0.3), 0.3);
  EXPECT_DOUBLE_EQ(XiMap::Descending().ExpectH(h, 0.3), 0.7);
  // RR: mean of (1-u)/2 and (1+u)/2 = 1/2 for every u.
  EXPECT_DOUBLE_EQ(XiMap::RoundRobin().ExpectH(h, 0.3), 0.5);
  EXPECT_DOUBLE_EQ(XiMap::ComplementaryRoundRobin().ExpectH(h, 0.3), 0.5);
  EXPECT_NEAR(XiMap::Uniform().ExpectH(h, 0.3), 0.5, 1e-9);
}

TEST(XiMapTest, Proposition6RoundRobinBranches) {
  // h = x^2 separates the two RR branches:
  // E[h] = ((1-u)^2 + (1+u)^2) / 8 = (1 + u^2) / 4.
  const auto h = [](double x) { return x * x; };
  for (double u : {0.0, 0.25, 0.6, 1.0}) {
    EXPECT_NEAR(XiMap::RoundRobin().ExpectH(h, u), (1.0 + u * u) / 4.0,
                1e-12);
  }
}

TEST(XiMapTest, Proposition7ReverseAndComplement) {
  const auto h = [](double x) { return x * x * x; };  // asymmetric probe
  const XiMap rr = XiMap::RoundRobin();
  const XiMap rev = rr.Reverse();
  const XiMap comp = rr.Complement();
  for (double u : {0.1, 0.5, 0.9}) {
    // Reverse: h(1 - xi(u)).
    EXPECT_NEAR(rev.ExpectH(h, u),
                rr.ExpectH([&](double x) { return h(1.0 - x); }, u), 1e-12);
    // Complement: xi(1 - u).
    EXPECT_NEAR(comp.ExpectH(h, u), rr.ExpectH(h, 1.0 - u), 1e-12);
  }
  // CRR == RR'' (the paper's derivation of xi_CRR).
  const XiMap crr = XiMap::ComplementaryRoundRobin();
  for (double u : {0.2, 0.7}) {
    EXPECT_NEAR(comp.ExpectH(h, u), crr.ExpectH(h, u), 1e-12);
  }
}

TEST(XiMapTest, AscendingReversedIsDescending) {
  const auto h = [](double x) { return std::exp(x); };
  const XiMap rev = XiMap::Ascending().Reverse();
  for (double u : {0.0, 0.4, 1.0}) {
    EXPECT_NEAR(rev.ExpectH(h, u), XiMap::Descending().ExpectH(h, u),
                1e-12);
  }
}

TEST(XiMapTest, FromKindDispatch) {
  EXPECT_EQ(XiMap::FromKind(PermutationKind::kRoundRobin).name(), "xi_RR");
  EXPECT_TRUE(XiMap::FromKind(PermutationKind::kUniform).is_uniform());
}

// ---------------------------------------------------------------------------
// Exact model Eq. (50).
// ---------------------------------------------------------------------------

TEST(ExactModelTest, ConstantDegreeMatchesHandComputation) {
  // With P(D = d) = 1 the whole mass is one atom: J jumps straight to 1,
  // so Eq. (50) evaluates h(xi(1)). (The degenerate single-atom case is
  // better served by the Lemma-4 r-form, see model_rform_test.)
  const ConstantDegree dist(7);
  const double g7 = 42.0;  // 7^2 - 7
  EXPECT_NEAR(ExactDiscreteCost(dist, 7, Method::kT1, XiMap::Ascending()),
              g7 * 0.5, 1e-12);  // h_T1(1) = 1/2
  EXPECT_NEAR(ExactDiscreteCost(dist, 7, Method::kT1, XiMap::Descending()),
              0.0, 1e-12);  // h_T1(0) = 0
  EXPECT_NEAR(ExactDiscreteCost(dist, 7, Method::kT2, XiMap::Descending()),
              0.0, 1e-12);  // h_T2(0) = 0
  // The uniform map is J-insensitive: E[g(D)] E[h(U)] = 42 / 6.
  EXPECT_NEAR(ExactDiscreteCost(dist, 7, Method::kT1, XiMap::Uniform()),
              42.0 / 6.0, 1e-6);
}

TEST(ExactModelTest, UniformPermutationFactorsOut) {
  // Eq. (31): cost = E[g(D)] E[h(U)] for the uniform map.
  const DiscretePareto base(2.1, 33.0);
  const TruncatedDistribution fn(base, 1000);
  const double eg = MeanG(fn, 1000);
  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    EXPECT_NEAR(ExactDiscreteCost(fn, 1000, m, XiMap::Uniform()),
                eg * MeanHUniform(m), eg * 1e-6)
        << MethodName(m);
  }
}

TEST(ExactModelTest, NoOrientationReferenceCosts) {
  // Orientation reduces vertex-iterator cost by 3x vs E[D^2-D]/2 and SEI
  // by 3x vs E[D^2-D] (Section 5.3).
  const DiscretePareto base(2.1, 33.0);
  const TruncatedDistribution fn(base, 1000);
  const double eg = MeanG(fn, 1000);
  const double t1_uniform =
      ExactDiscreteCost(fn, 1000, Method::kT1, XiMap::Uniform());
  const double e1_uniform =
      ExactDiscreteCost(fn, 1000, Method::kE1, XiMap::Uniform());
  EXPECT_NEAR((eg / 2.0) / t1_uniform, 3.0, 1e-6);
  EXPECT_NEAR(eg / e1_uniform, 3.0, 1e-6);
}

TEST(ExactModelTest, Proposition8ConstantRMakesAllMapsEqual) {
  // Constant degree => r(x) constant => every permutation costs the same
  // (and equals E[g(D)] E[h(U)] by Proposition 8)... except that J is
  // degenerate; verify with a two-point distribution engineered so that
  // g/w is constant: w = g via capped? Instead verify the exact statement
  // on the uniform map against the mixture maps for ConstantDegree, where
  // xi(J(D)) = xi(1) always.
  const ConstantDegree dist(5);
  const double t2_rr =
      ExactDiscreteCost(dist, 5, Method::kT2, XiMap::RoundRobin());
  // xi_RR(1) = 0 or 1; h_T2 vanishes at both: zero.
  EXPECT_NEAR(t2_rr, 0.0, 1e-12);
}

TEST(ExactModelTest, MonotonePermutationOrderingForT1) {
  // For T1, theta_D < uniform < theta_A in cost (heavy tails).
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 2000);
  const double asc =
      ExactDiscreteCost(fn, 2000, Method::kT1, XiMap::Ascending());
  const double uni =
      ExactDiscreteCost(fn, 2000, Method::kT1, XiMap::Uniform());
  const double desc =
      ExactDiscreteCost(fn, 2000, Method::kT1, XiMap::Descending());
  EXPECT_LT(desc, uni);
  EXPECT_LT(uni, asc);
}

TEST(ExactModelTest, T2SymmetryBetweenAscendingAndDescending) {
  // h(1-x) = h(x) for T2 => theta_A and theta_D cost the same (Sec. 4.2).
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 2000);
  const double asc =
      ExactDiscreteCost(fn, 2000, Method::kT2, XiMap::Ascending());
  const double desc =
      ExactDiscreteCost(fn, 2000, Method::kT2, XiMap::Descending());
  // h(1 - J) == h(J) pointwise for the symmetric T2 shape.
  EXPECT_NEAR(asc, desc, asc * 1e-9);
}

TEST(ExactModelTest, RoundRobinBeatsDescendingForT2) {
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 2000);
  const double rr =
      ExactDiscreteCost(fn, 2000, Method::kT2, XiMap::RoundRobin());
  const double desc =
      ExactDiscreteCost(fn, 2000, Method::kT2, XiMap::Descending());
  EXPECT_LT(rr, desc);
}

TEST(ExactModelTest, T2RoundRobinIsHalfOfE1Descending) {
  // Eq. (34) vs (35): c(T2, RR) = E[g(1-J^2)]/4 = c(E1, D)/2.
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 5000);
  const double t2_rr =
      ExactDiscreteCost(fn, 5000, Method::kT2, XiMap::RoundRobin());
  const double e1_d =
      ExactDiscreteCost(fn, 5000, Method::kE1, XiMap::Descending());
  // Pointwise identity: the RR mixture of h_T2 equals (1 - J^2)/4.
  EXPECT_NEAR(t2_rr, e1_d / 2.0, e1_d * 1e-9);
}

// ---------------------------------------------------------------------------
// Algorithm 2 (fast model).
// ---------------------------------------------------------------------------

TEST(FastModelTest, TinyEpsilonMatchesExact) {
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, 10000);
  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    for (const XiMap& xi : {XiMap::Descending(), XiMap::RoundRobin()}) {
      const double exact = ExactDiscreteCost(fn, 10000, m, xi);
      const double fast =
          FastDiscreteCost(fn, 10000, m, xi, WeightFn::Identity(),
                           /*eps=*/1.0 / 10000.0);
      EXPECT_NEAR(fast, exact, std::abs(exact) * 1e-12)
          << MethodName(m) << " " << xi.name();
    }
  }
}

TEST(FastModelTest, ErrorShrinksWithEpsilon) {
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, 1000000);
  const XiMap xi = XiMap::Descending();
  const double exact = ExactDiscreteCost(fn, 1000000, Method::kT1, xi);
  const double coarse = FastDiscreteCost(fn, 1000000, Method::kT1, xi,
                                         WeightFn::Identity(), 1e-2);
  const double fine = FastDiscreteCost(fn, 1000000, Method::kT1, xi,
                                       WeightFn::Identity(), 1e-5);
  EXPECT_LT(std::abs(fine - exact), std::abs(coarse - exact));
  EXPECT_NEAR(fine, exact, std::abs(exact) * 1e-3);
}

TEST(FastModelTest, HandlesAstronomicalTruncation) {
  // The Table 5 scenario: t_n ~ 1e17 in fractions of a second.
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, int64_t{100000000000000000});
  const double cost = FastDiscreteCost(fn, int64_t{100000000000000000},
                                       Method::kT1, XiMap::Descending(),
                                       WeightFn::Identity(), 1e-5);
  EXPECT_GT(cost, 300.0);
  EXPECT_LT(cost, 400.0);  // converged value ~356 per Table 5
}

TEST(FastModelTest, AsymptoticCostMatchesLargeTruncationLimit) {
  const DiscretePareto base = DiscretePareto::PaperParameterization(1.7);
  const XiMap xi = XiMap::Descending();
  const double limit = AsymptoticCost(base, Method::kT2, xi);
  const TruncatedDistribution fn(base, int64_t{1} << 40);
  const double truncated = FastDiscreteCost(fn, int64_t{1} << 40,
                                            Method::kT2, xi);
  EXPECT_NEAR(limit, truncated, limit * 1e-2);
}

TEST(FastModelTest, CappedWeightChangesFiniteNButNotLimit) {
  // w1 = x and w2 = min(x, cap) must converge to the same limit under
  // root truncation (Section 7.4) but differ at finite n under linear
  // truncation.
  const DiscretePareto base(1.2, 6.0);
  const int64_t n = 100000;
  const TruncatedDistribution linear(base, n - 1);
  const XiMap xi = XiMap::Descending();
  const double w1 = FastDiscreteCost(linear, n - 1, Method::kT1, xi,
                                     WeightFn::Identity(), 1e-4);
  const double w2 = FastDiscreteCost(linear, n - 1, Method::kT1, xi,
                                     WeightFn::Capped(500.0), 1e-4);
  EXPECT_GT(std::abs(w1 - w2) / w1, 0.05);

  // Root truncation: cap at sqrt(m) >> t_n has no effect at all.
  const TruncatedDistribution root(base, 316);
  const double r1 =
      FastDiscreteCost(root, 316, Method::kT1, xi, WeightFn::Identity(),
                       1e-4);
  const double r2 = FastDiscreteCost(root, 316, Method::kT1, xi,
                                     WeightFn::Capped(1e9), 1e-4);
  EXPECT_NEAR(r1, r2, r1 * 1e-12);
}

}  // namespace
}  // namespace trilist
