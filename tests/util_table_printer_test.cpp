#include "src/util/table_printer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace trilist {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"n", "cost"});
  t.AddRow({"10", "1.5"});
  t.AddRow({"10000", "142.85"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| n     | cost   |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 10000 | 142.85 |"), std::string::npos) << out;
}

TEST(TablePrinterTest, HeaderUnderline) {
  TablePrinter t({"a"});
  t.AddRow({"x"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("|---|"), std::string::npos) << out;
}

TEST(FormatNumberTest, ThousandsSeparators) {
  EXPECT_EQ(FormatNumber(1354.5, 1), "1,354.5");
  EXPECT_EQ(FormatNumber(142.85, 2), "142.85");
  EXPECT_EQ(FormatNumber(1234567.0, 0), "1,234,567");
  EXPECT_EQ(FormatNumber(-1234.5, 1), "-1,234.5");
  EXPECT_EQ(FormatNumber(0.5, 1), "0.5");
}

TEST(FormatNumberTest, SpecialValues) {
  EXPECT_EQ(FormatNumber(std::numeric_limits<double>::infinity(), 1), "inf");
  EXPECT_EQ(FormatNumber(-std::numeric_limits<double>::infinity(), 1),
            "-inf");
  EXPECT_EQ(FormatNumber(std::nan(""), 1), "nan");
}

TEST(FormatCountTest, Separators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(41000000), "41,000,000");
}

TEST(FormatOpsTest, PaperStyleUnits) {
  EXPECT_EQ(FormatOps(150e9), "150B");
  EXPECT_EQ(FormatOps(123e12), "123T");
  EXPECT_EQ(FormatOps(1.5e6), "1.50M");
  EXPECT_EQ(FormatOps(62e12), "62.0T");
  EXPECT_EQ(FormatOps(500.0), "500");
  EXPECT_EQ(FormatOps(std::numeric_limits<double>::infinity()), "inf");
}

TEST(FormatPercentTest, SignAndDigits) {
  EXPECT_EQ(FormatPercent(-2.2, 1), "-2.2%");
  EXPECT_EQ(FormatPercent(0.003, 3), "0.003%");
  EXPECT_EQ(FormatPercent(71.1, 1), "71.1%");
}

}  // namespace
}  // namespace trilist
