#include "src/run/runner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/graph/binfmt.h"
#include "src/graph/io.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

GenerateSpec SmallPareto() {
  GenerateSpec gen;
  gen.n = 3000;
  gen.alpha = 1.7;
  return gen;
}

void ExpectSameOps(const OpCounts& a, const OpCounts& b,
                   const char* context) {
  EXPECT_EQ(a.candidate_checks, b.candidate_checks) << context;
  EXPECT_EQ(a.local_scans, b.local_scans) << context;
  EXPECT_EQ(a.remote_scans, b.remote_scans) << context;
  EXPECT_EQ(a.merge_comparisons, b.merge_comparisons) << context;
  EXPECT_EQ(a.hash_inserts, b.hash_inserts) << context;
  EXPECT_EQ(a.lookups, b.lookups) << context;
  EXPECT_EQ(a.binary_searches, b.binary_searches) << context;
  EXPECT_EQ(a.triangles, b.triangles) << context;
}

TEST(ResolveThreadsTest, ZeroMeansAllHardwareThreads) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(5), 5);
}

// The engine contract the CLI documents: any --threads value produces
// bit-identical triangles and operation counters for every fundamental
// method.
TEST(RunnerTest, SerialAndParallelRunsAgree) {
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(SmallPareto());
  spec.methods = FundamentalMethods();
  spec.exec.threads = 1;
  auto serial = RunPipeline(spec);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  spec.exec.threads = 4;
  auto parallel = RunPipeline(spec);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(parallel->threads, 4);
  ASSERT_EQ(serial->methods.size(), parallel->methods.size());
  for (size_t i = 0; i < serial->methods.size(); ++i) {
    const MethodReport& s = serial->methods[i];
    const MethodReport& p = parallel->methods[i];
    EXPECT_FALSE(s.parallel);
    EXPECT_TRUE(p.parallel) << MethodName(p.method);
    EXPECT_EQ(s.triangles, p.triangles) << MethodName(s.method);
    ExpectSameOps(s.ops, p.ops, MethodName(s.method));
    EXPECT_DOUBLE_EQ(s.formula_cost, p.formula_cost);
  }
}

// --threads 0 means "auto": the report must show the resolved hardware
// width (and compute utilization over it), while preserving the request,
// and the listing must be bit-identical to an explicit request of the
// same width.
TEST(RunnerTest, ThreadsZeroResolvesToHardwareWidth) {
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(SmallPareto());
  spec.methods = {Method::kT1, Method::kE1};
  spec.exec.threads = 0;
  auto auto_run = RunPipeline(spec);
  ASSERT_TRUE(auto_run.ok()) << auto_run.status().ToString();

  const int resolved = ResolveThreads(0);
  EXPECT_EQ(auto_run->threads, resolved);
  EXPECT_EQ(auto_run->requested_threads, 0);
  EXPECT_NE(auto_run->ToJson().find("\"requested_threads\": 0"),
            std::string::npos);

  spec.exec.threads = resolved;
  auto explicit_run = RunPipeline(spec);
  ASSERT_TRUE(explicit_run.ok()) << explicit_run.status().ToString();
  EXPECT_EQ(explicit_run->threads, resolved);
  EXPECT_EQ(explicit_run->requested_threads, resolved);
  ASSERT_EQ(auto_run->methods.size(), explicit_run->methods.size());
  for (size_t i = 0; i < auto_run->methods.size(); ++i) {
    const MethodReport& a = auto_run->methods[i];
    const MethodReport& e = explicit_run->methods[i];
    EXPECT_EQ(a.parallel, e.parallel) << MethodName(a.method);
    EXPECT_EQ(a.triangles, e.triangles) << MethodName(a.method);
    ExpectSameOps(a.ops, e.ops, MethodName(a.method));
  }
}

// The profiling pass fills one degree profile per method whose measured
// total reproduces the method's paper-metric cost.
TEST(RunnerTest, DegreeProfilePassMatchesPaperCost) {
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(SmallPareto());
  spec.methods = {Method::kT1, Method::kE1, Method::kL1};
  spec.degree_profile = true;
  auto report = RunPipeline(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->degree_profiles.size(), spec.methods.size());
  EXPECT_GT(report->stages.WallOf("profile"), 0.0);
  for (size_t i = 0; i < spec.methods.size(); ++i) {
    const obs::DegreeProfile& p = report->degree_profiles[i];
    EXPECT_EQ(p.method, spec.methods[i]);
    EXPECT_EQ(p.total_measured, report->methods[i].ops.PaperCost())
        << MethodName(p.method);
    EXPECT_GT(p.total_predicted, 0.0) << MethodName(p.method);
  }
  // Off by default: no profile pass, no "profile" stage.
  spec.degree_profile = false;
  auto plain = RunPipeline(spec);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->degree_profiles.empty());
  EXPECT_EQ(plain->stages.WallOf("profile"), 0.0);
}

// A `.tlg` container with an embedded orientation must produce the same
// listing as the text edge list of the same graph, while skipping the
// order/orient stages entirely.
TEST(RunnerTest, TextAndCachedTlgSourcesAgree) {
  Rng rng(99);
  auto graph = GenerateGraph(SmallPareto(), &rng);
  ASSERT_TRUE(graph.ok());
  const std::string text_path = TempPath("runner_parity.txt");
  const std::string tlg_path = TempPath("runner_parity.tlg");
  ASSERT_TRUE(WriteEdgeListFile(*graph, text_path).ok());
  const OrientSpec orient{PermutationKind::kDescending, 0};
  TlgWriteOptions wopts;
  wopts.orientations = {orient};
  ASSERT_TRUE(WriteTlgFile(*graph, tlg_path, wopts).ok());

  RunSpec spec;
  spec.orient = orient;
  spec.methods = FundamentalMethods();

  spec.source = GraphSource::FromFile(text_path);
  auto from_text = RunPipeline(spec);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_FALSE(from_text->cached_orientation);

  spec.source = GraphSource::FromFile(tlg_path);
  auto from_tlg = RunPipeline(spec);
  ASSERT_TRUE(from_tlg.ok()) << from_tlg.status().ToString();
  EXPECT_TRUE(from_tlg->cached_orientation);
  EXPECT_EQ(from_tlg->stages.WallOf("order"), 0.0);
  EXPECT_EQ(from_tlg->stages.WallOf("orient"), 0.0);

  EXPECT_EQ(from_text->num_nodes, from_tlg->num_nodes);
  EXPECT_EQ(from_text->num_edges, from_tlg->num_edges);
  ASSERT_EQ(from_text->methods.size(), from_tlg->methods.size());
  for (size_t i = 0; i < from_text->methods.size(); ++i) {
    const MethodReport& t = from_text->methods[i];
    const MethodReport& c = from_tlg->methods[i];
    EXPECT_EQ(t.triangles, c.triangles) << MethodName(t.method);
    ExpectSameOps(t.ops, c.ops, MethodName(t.method));
  }
}

// An in-memory source must match the generate source it came from, and
// repeats must agree with a single pass.
TEST(RunnerTest, InMemorySourceAndRepeatsAreConsistent) {
  Rng rng(1);
  auto graph = GenerateGraph(SmallPareto(), &rng);
  ASSERT_TRUE(graph.ok());

  RunSpec generated;
  generated.source = GraphSource::FromGenerator(SmallPareto());
  generated.seed = 1;
  auto from_gen = RunPipeline(generated);
  ASSERT_TRUE(from_gen.ok());

  RunSpec in_memory;
  in_memory.source = GraphSource::FromGraph(*graph);
  in_memory.repeats = 3;
  auto from_mem = RunPipeline(in_memory);
  ASSERT_TRUE(from_mem.ok());

  EXPECT_EQ(from_gen->Triangles(), from_mem->Triangles());
  EXPECT_GE(from_mem->methods[0].wall_total_s,
            from_mem->methods[0].wall_s);
}

// Collecting runs return the actual triangles; their count matches the
// counting sink's.
TEST(RunnerTest, CollectSinkListsTriangles) {
  GenerateSpec gen;
  gen.n = 400;
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(gen);
  spec.sink = SinkKind::kCollect;
  auto report = RunPipeline(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->methods[0].listed.size(), report->Triangles());
  EXPECT_GT(report->Triangles(), 0u);
}

// A memory budget switches E1/E2 to the partitioned executors: the
// counts and CPU counters are bit-identical to the in-memory run and
// the report carries a populated I/O ledger.
TEST(RunnerTest, MemoryBudgetedRunMatchesInMemory) {
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(SmallPareto());
  spec.methods = {Method::kE1, Method::kE2};
  auto in_memory = RunPipeline(spec);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  EXPECT_FALSE(in_memory->partitioned);

  spec.mem_budget_bytes = 16 << 10;  // tiny: forces several partitions
  auto budgeted = RunPipeline(spec);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  EXPECT_TRUE(budgeted->partitioned);
  EXPECT_GT(budgeted->io_partitions, 1);
  EXPECT_GT(budgeted->io.passes, 0);
  EXPECT_GT(budgeted->io.bytes_loaded, 0);
  EXPECT_GT(budgeted->io.bytes_streamed, 0);
  ASSERT_EQ(budgeted->methods.size(), in_memory->methods.size());
  for (size_t i = 0; i < budgeted->methods.size(); ++i) {
    EXPECT_EQ(budgeted->methods[i].triangles,
              in_memory->methods[i].triangles);
    ExpectSameOps(budgeted->methods[i].ops, in_memory->methods[i].ops,
                  MethodName(budgeted->methods[i].method));
  }
  EXPECT_NE(budgeted->ToJson().find("\"partitioned\": true"),
            std::string::npos);
}

// Only E1/E2 have partitioned executors; anything else under a budget
// is an explicit error, not a silent in-memory fallback.
TEST(RunnerTest, MemoryBudgetRejectsUnsupportedMethods) {
  RunSpec spec;
  GenerateSpec gen;
  gen.n = 400;
  spec.source = GraphSource::FromGenerator(gen);
  spec.methods = {Method::kT1};
  spec.mem_budget_bytes = 1 << 20;
  auto report = RunPipeline(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// RunExperiment's shared-helper path: the telemetry clock sees every
// phase and the run is reproducible for a fixed seed.
TEST(RunnerTest, GenerateSpecSamplingIsDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  const std::vector<int64_t> a = SampleGraphicDegrees(SmallPareto(), &rng_a);
  const std::vector<int64_t> b = SampleGraphicDegrees(SmallPareto(), &rng_b);
  EXPECT_EQ(a, b);
  auto g1 = GenerateGraph(SmallPareto(), &rng_a);
  ASSERT_TRUE(g1.ok());
  EXPECT_GT(g1->num_edges(), 0u);
}

}  // namespace
}  // namespace trilist
