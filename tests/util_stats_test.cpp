#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdError(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Min(), 5.0);
  EXPECT_EQ(s.Max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sum of squared deviations = 32; sample variance = 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.StdError(), s.StdDev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsPooled) {
  Rng rng(3);
  RunningStats a;
  RunningStats b;
  RunningStats pooled;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    (i % 3 == 0 ? a : b).Add(x);
    pooled.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.Mean(), pooled.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), pooled.Variance(), 1e-9);
  EXPECT_EQ(a.Min(), pooled.Min());
  EXPECT_EQ(a.Max(), pooled.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  RunningStats target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.Mean(), 2.0);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(RelativeErrorPercent(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPercent(90.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPercent(5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace trilist
