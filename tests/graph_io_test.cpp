#include "src/graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/algo/brute_force.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(EdgeListIoTest, RoundTripsSmallGraph) {
  const Graph g = MakeBowTie(4);
  std::stringstream buf;
  WriteEdgeList(g, &buf);
  auto r = ReadEdgeList(&buf);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_nodes(), g.num_nodes());
  EXPECT_EQ(r->EdgeList(), g.EdgeList());
}

TEST(EdgeListIoTest, RoundTripsRandomGraph) {
  Rng rng(3);
  const Graph g = GenerateGnp(500, 0.02, &rng);
  std::stringstream buf;
  WriteEdgeList(g, &buf);
  auto r = ReadEdgeList(&buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->EdgeList(), g.EdgeList());
  EXPECT_EQ(CountTrianglesReference(*r), CountTrianglesReference(g));
}

TEST(EdgeListIoTest, PreservesIsolatedNodesViaHeader) {
  // Node 4 is isolated; without the header its existence would be lost.
  auto g = Graph::FromEdges(5, {{0, 1}, {2, 3}}).ValueOrDie();
  std::stringstream buf;
  WriteEdgeList(g, &buf);
  auto r = ReadEdgeList(&buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_nodes(), 5u);
}

TEST(EdgeListIoTest, InfersNodeCountWithoutHeader) {
  std::stringstream buf("0 1\n5 2\n");
  auto r = ReadEdgeList(&buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_nodes(), 6u);
  EXPECT_TRUE(r->HasEdge(5, 2));
}

TEST(EdgeListIoTest, SkipsCommentsAndBlankLines) {
  std::stringstream buf(
      "# a comment\n% another style\n\n0 1\n# nodes 10\n1 2\n");
  auto r = ReadEdgeList(&buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_nodes(), 10u);
  EXPECT_EQ(r->num_edges(), 2u);
}

TEST(EdgeListIoTest, RejectsMalformedLine) {
  std::stringstream buf("0 1\nnot numbers\n");
  auto r = ReadEdgeList(&buf);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(EdgeListIoTest, RejectsSelfLoopAndDuplicate) {
  std::stringstream loop("1 1\n");
  EXPECT_FALSE(ReadEdgeList(&loop).ok());
  std::stringstream dup("0 1\n1 0\n");
  EXPECT_FALSE(ReadEdgeList(&dup).ok());
}

TEST(EdgeListIoTest, EmptyInputIsEmptyGraph) {
  std::stringstream buf("");
  auto r = ReadEdgeList(&buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_nodes(), 0u);
}

TEST(EdgeListIoTest, FileRoundTrip) {
  const Graph g = MakeComplete(6);
  const std::string path = ::testing::TempDir() + "/trilist_io_test.txt";
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  auto r = ReadEdgeListFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->EdgeList(), g.EdgeList());
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, MissingFileErrors) {
  auto r = ReadEdgeListFile("/nonexistent/definitely/missing.txt");
  EXPECT_FALSE(r.ok());
}

TEST(EdgeListIoTest, TolerantModeDropsLoopsAndDuplicates) {
  std::stringstream buf("0 0\n0 1\n1 0\n0 1\n1 2\n");
  IngestStats stats;
  auto r = ReadEdgeList(&buf, EdgeListMode::kTolerant, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_edges(), 2u);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
  EXPECT_EQ(stats.duplicates_dropped, 2u);
  EXPECT_EQ(stats.edges_in, 5u);
  EXPECT_EQ(stats.num_edges, 2u);
  EXPECT_FALSE(stats.Summary().empty());
}

TEST(EdgeListIoTest, TolerantModeKeepsSelfLoopOnlyNodeAsIsolated) {
  // Node 5's only incident record is a self-loop; dropping the loop must
  // not shrink the implicit node count, so nodes 0..5 all exist and 5 is
  // isolated.
  std::stringstream buf("0 1\n5 5\n");
  IngestStats stats;
  auto r = ReadEdgeList(&buf, EdgeListMode::kTolerant, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_nodes(), 6u);
  EXPECT_EQ(r->num_edges(), 1u);
  EXPECT_EQ(r->Degree(5), 0);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
}

TEST(EdgeListIoTest, TolerantModeAcceptsCrlfTabsAndTrailingWhitespace) {
  std::stringstream buf("0\t1\r\n1 2 \t\r\n   \r\n2 3\n");
  IngestStats stats;
  auto r = ReadEdgeList(&buf, EdgeListMode::kTolerant, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_edges(), 3u);
  EXPECT_EQ(stats.blank_lines, 1u);
}

TEST(EdgeListIoTest, TolerantModeStillRejectsMalformedLines) {
  std::stringstream buf("0 1\ngarbage here\n");
  auto r = ReadEdgeList(&buf, EdgeListMode::kTolerant);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(EdgeListIoTest, TolerantModeMatchesStrictOnCleanInput) {
  Rng rng(5);
  const Graph g = GenerateGnp(300, 0.03, &rng);
  std::stringstream strict_buf;
  WriteEdgeList(g, &strict_buf);
  std::stringstream tolerant_buf(strict_buf.str());
  auto strict = ReadEdgeList(&strict_buf);
  IngestStats stats;
  auto tolerant =
      ReadEdgeList(&tolerant_buf, EdgeListMode::kTolerant, &stats);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(strict->EdgeList(), tolerant->EdgeList());
  EXPECT_EQ(stats.self_loops_dropped, 0u);
  EXPECT_EQ(stats.duplicates_dropped, 0u);
}

TEST(BitsetOracleTest, AgreesWithOtherOracles) {
  Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = GenerateGnp(150, 0.02 + 0.03 * trial, &rng);
    EXPECT_EQ(CountTrianglesBitset(g), CountTrianglesReference(g)) << trial;
  }
  EXPECT_EQ(CountTrianglesBitset(MakeComplete(10)), 120u);
  EXPECT_EQ(CountTrianglesBitset(MakeEmpty(10)), 0u);
  EXPECT_EQ(CountTrianglesBitset(MakeStar(20)), 0u);
}

}  // namespace
}  // namespace trilist
