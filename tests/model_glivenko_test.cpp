#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/h_function.h"
#include "src/core/spread.h"
#include "src/core/xi_map.h"
#include "src/degree/pareto.h"
#include "src/degree/simple_distributions.h"
#include "src/degree/truncated.h"
#include "src/order/named_orders.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

/// Numeric E[g(D) 1{F(D) <= u}] = int_0^u g(F^{-1}(x)) dx for a discrete
/// distribution, evaluated by direct summation over the support.
double PartialGIntegral(const DegreeDistribution& fn, int64_t t_n,
                        double u) {
  // sum over k of g(k) * mass of {x in (F(k-1), F(k)] : x <= u}.
  double acc = 0.0;
  double cum = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    const double p = fn.Pmf(k);
    const double lo = cum;
    cum += p;
    const double covered = std::min(cum, u) - lo;
    if (covered > 0.0) acc += GFunction(static_cast<double>(k)) * covered;
    if (cum >= u) break;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Lemma 1: (1/n) sum_{i <= nu} g(A_ni) -> int_0^u g(F^{-1}(x)) dx.
// ---------------------------------------------------------------------------

class Lemma1Test : public ::testing::TestWithParam<double> {};

TEST_P(Lemma1Test, PartialSumsConverge) {
  const double u = GetParam();
  const DiscretePareto base(2.1, 33.0);
  const int64_t t_n = 1000;
  const TruncatedDistribution fn(base, t_n);
  Rng rng(5);
  const size_t n = 200000;
  std::vector<int64_t> a(n);
  for (auto& d : a) d = fn.Sample(&rng);
  std::sort(a.begin(), a.end());
  double partial = 0.0;
  const auto cut = static_cast<size_t>(std::floor(u * n));
  for (size_t i = 0; i < cut; ++i) {
    partial += GFunction(static_cast<double>(a[i]));
  }
  partial /= static_cast<double>(n);
  const double limit = PartialGIntegral(fn, t_n, u);
  EXPECT_NEAR(partial, limit, std::max(1.0, limit) * 0.05) << "u=" << u;
}

INSTANTIATE_TEST_SUITE_P(CutPoints, Lemma1Test,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

// ---------------------------------------------------------------------------
// Lemma 3 / Theorem 2 mechanics: for an admissible permutation,
// (1/n) sum_i g(d_i(theta)) h(i/n) -> E[g(F^{-1}(U)) h(xi(U))].
// ---------------------------------------------------------------------------

struct Lemma3Case {
  const char* name;
  PermutationKind kind;
};

class Lemma3Test : public ::testing::TestWithParam<Lemma3Case> {};

TEST_P(Lemma3Test, WeightedSumsConvergeToMapExpectation) {
  const Lemma3Case c = GetParam();
  const DiscretePareto base(2.1, 33.0);
  const int64_t t_n = 1000;
  const TruncatedDistribution fn(base, t_n);
  Rng rng(7);
  const size_t n = 200000;
  std::vector<int64_t> a(n);
  for (auto& d : a) d = fn.Sample(&rng);
  std::sort(a.begin(), a.end());

  const auto h = HOf(Method::kT2);  // any smooth probe works
  const Permutation theta = MakePermutation(c.kind, n, &rng);
  // LHS: average of g(A_pos) h(theta(pos)/n) — note d_i(theta) = A at the
  // position mapping to label i, so summing over positions is equivalent.
  double lhs = 0.0;
  for (size_t pos = 0; pos < n; ++pos) {
    lhs += GFunction(static_cast<double>(a[pos])) *
           EvalH(Method::kT2,
                 (static_cast<double>(theta(pos)) + 1.0) /
                     static_cast<double>(n));
  }
  lhs /= static_cast<double>(n);

  // RHS: E[g(F^{-1}(U)) E_xi[h(xi(U))]] by summation over the support.
  const XiMap xi = XiMap::FromKind(c.kind);
  double rhs = 0.0;
  double cum = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    const double p = fn.Pmf(k);
    if (p <= 0.0) continue;
    // Average xi over the mass interval (midpoint).
    const double mid = cum + p / 2.0;
    rhs += GFunction(static_cast<double>(k)) * xi.ExpectH(h, mid) * p;
    cum += p;
  }
  EXPECT_NEAR(lhs, rhs, rhs * 0.05) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Permutations, Lemma3Test,
    ::testing::Values(Lemma3Case{"asc", PermutationKind::kAscending},
                      Lemma3Case{"desc", PermutationKind::kDescending},
                      Lemma3Case{"rr", PermutationKind::kRoundRobin},
                      Lemma3Case{"crr",
                                 PermutationKind::kComplementaryRoundRobin},
                      Lemma3Case{"uniform", PermutationKind::kUniform}),
    [](const ::testing::TestParamInfo<Lemma3Case>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// Theorem 1 consistency: the empirical Proposition-4 sum under theta_A
// approaches E[g(D) h(J(D))] computed analytically.
// ---------------------------------------------------------------------------

TEST(Theorem1Test, EmpiricalCostSumMatchesAnalyticExpectation) {
  const DiscretePareto base(2.1, 33.0);
  const int64_t t_n = 500;
  const TruncatedDistribution fn(base, t_n);
  Rng rng(9);
  const size_t n = 100000;
  std::vector<int64_t> a(n);
  for (auto& d : a) d = fn.Sample(&rng);
  std::sort(a.begin(), a.end());
  // Empirical: (1/n) sum g(A_i) h(J_hat_i), J_hat = empirical weighted
  // prefix.
  double total_w = 0.0;
  for (int64_t d : a) total_w += static_cast<double>(d);
  double prefix = 0.0;
  double lhs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    prefix += static_cast<double>(a[i]);
    lhs += GFunction(static_cast<double>(a[i])) *
           EvalH(Method::kT1, prefix / total_w);
  }
  lhs /= static_cast<double>(n);
  // Analytic: E[g(D) h(J(D))].
  const auto j = SpreadTable(fn, t_n);
  double rhs = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    rhs += GFunction(static_cast<double>(k)) *
           EvalH(Method::kT1, j[static_cast<size_t>(k - 1)]) * fn.Pmf(k);
  }
  EXPECT_NEAR(lhs, rhs, rhs * 0.03);
}

}  // namespace
}  // namespace trilist
