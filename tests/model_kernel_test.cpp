#include "src/core/kernel.h"

#include <gtest/gtest.h>

#include "src/core/h_function.h"
#include "src/order/named_orders.h"
#include "src/order/optimal.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// XiMap kernels (Definition 4).
// ---------------------------------------------------------------------------

TEST(XiKernelTest, AscendingIsStepAtU) {
  const XiMap asc = XiMap::Ascending();
  EXPECT_EQ(asc.Cdf(0.29, 0.3), 0.0);
  EXPECT_EQ(asc.Cdf(0.30, 0.3), 1.0);
  EXPECT_EQ(asc.Cdf(0.95, 0.3), 1.0);
}

TEST(XiKernelTest, RoundRobinTwoSteps) {
  // xi_RR(0.4) is (1-0.4)/2 = 0.3 or (1+0.4)/2 = 0.7, each w.p. 1/2.
  const XiMap rr = XiMap::RoundRobin();
  EXPECT_EQ(rr.Cdf(0.29, 0.4), 0.0);
  EXPECT_EQ(rr.Cdf(0.3, 0.4), 0.5);
  EXPECT_EQ(rr.Cdf(0.69, 0.4), 0.5);
  EXPECT_EQ(rr.Cdf(0.7, 0.4), 1.0);
}

TEST(XiKernelTest, UniformIsIdentityCdf) {
  const XiMap uni = XiMap::Uniform();
  EXPECT_EQ(uni.Cdf(-0.5, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(uni.Cdf(0.37, 0.9), 0.37);
  EXPECT_EQ(uni.Cdf(1.5, 0.2), 1.0);
}

TEST(XiKernelTest, AllNamedMapsAreMeasurePreserving) {
  for (const XiMap& xi :
       {XiMap::Ascending(), XiMap::Descending(), XiMap::RoundRobin(),
        XiMap::ComplementaryRoundRobin(), XiMap::Uniform()}) {
    EXPECT_TRUE(xi.IsMeasurePreserving()) << xi.name();
  }
}

TEST(XiKernelTest, NonPreservingMixtureDetected) {
  // xi(u) = u/2 alone squeezes all mass into [0, 1/2]: not preserving.
  const XiMap squash = XiMap::Mixture({{1.0, 0.0, 0.5}}, "squash");
  EXPECT_FALSE(squash.IsMeasurePreserving());
}

// ---------------------------------------------------------------------------
// Empirical kernels of concrete permutations (Definition 5).
// ---------------------------------------------------------------------------

TEST(EmpiricalKernelTest, AscendingMatchesItsLimit) {
  const Permutation theta = AscendingPermutation(20000);
  EXPECT_LT(KernelDistance(theta, XiMap::Ascending()), 0.05);
}

TEST(EmpiricalKernelTest, DescendingMatchesItsLimit) {
  const Permutation theta = DescendingPermutation(20000);
  EXPECT_LT(KernelDistance(theta, XiMap::Descending()), 0.05);
}

TEST(EmpiricalKernelTest, Proposition6RoundRobin) {
  const Permutation theta = RoundRobinPermutation(20000);
  EXPECT_LT(KernelDistance(theta, XiMap::RoundRobin()), 0.05);
}

TEST(EmpiricalKernelTest, CrrMatchesComplementLimit) {
  const Permutation theta = ComplementaryRoundRobinPermutation(20000);
  EXPECT_LT(KernelDistance(theta, XiMap::ComplementaryRoundRobin()), 0.05);
}

TEST(EmpiricalKernelTest, UniformMatchesUniformLimit) {
  Rng rng(3);
  const Permutation theta = UniformPermutation(20000, &rng);
  EXPECT_LT(KernelDistance(theta, XiMap::Uniform()), 0.08);
}

TEST(EmpiricalKernelTest, WrongLimitIsRejected) {
  const Permutation theta = DescendingPermutation(20000);
  EXPECT_GT(KernelDistance(theta, XiMap::Ascending()), 0.5);
  EXPECT_GT(KernelDistance(theta, XiMap::RoundRobin()), 0.3);
}

TEST(EmpiricalKernelTest, Proposition7ReverseKernel) {
  // The reverse of RR must converge to 1 - xi_RR(u).
  const Permutation theta = RoundRobinPermutation(20000).Reverse();
  EXPECT_LT(KernelDistance(theta, XiMap::RoundRobin().Reverse()), 0.05);
}

TEST(EmpiricalKernelTest, OptPermutationForT2HasRrLimit) {
  // Algorithm 1's optimum for T2 spreads large positions to the ends —
  // asymptotically the same map as RR (the paper's Corollary 2 story).
  const Permutation opt = OptimalPermutation(HOf(Method::kT2), true, 20000);
  EXPECT_LT(KernelDistance(opt, XiMap::RoundRobin()), 0.06);
}

TEST(EmpiricalKernelTest, ConvergesWithN) {
  // K_n -> K: the distance must shrink as n grows (admissibility).
  const double d_small =
      KernelDistance(RoundRobinPermutation(500), XiMap::RoundRobin());
  const double d_large =
      KernelDistance(RoundRobinPermutation(50000), XiMap::RoundRobin());
  EXPECT_LT(d_large, d_small);
}

TEST(EmpiricalKernelTest, PointEvaluation) {
  // For theta_A with n=100, K_n(v; u) ~ 1[u <= v] away from the diagonal.
  const Permutation theta = AscendingPermutation(100);
  EXPECT_NEAR(EmpiricalKernel(theta, 0.8, 0.3, 5), 1.0, 1e-12);
  EXPECT_NEAR(EmpiricalKernel(theta, 0.1, 0.7, 5), 0.0, 1e-12);
}

}  // namespace
}  // namespace trilist
