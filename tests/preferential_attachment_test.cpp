#include "src/gen/preferential_attachment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/algo/local_counts.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(PreferentialAttachmentTest, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_FALSE(GeneratePreferentialAttachment(5, 0, &rng).ok());
  EXPECT_FALSE(GeneratePreferentialAttachment(3, 3, &rng).ok());
}

TEST(PreferentialAttachmentTest, EdgeCountFormula) {
  Rng rng(2);
  const size_t n = 2000;
  const size_t m = 3;
  auto g = GeneratePreferentialAttachment(n, m, &rng);
  ASSERT_TRUE(g.ok());
  // Seed star: m edges; each later arrival adds exactly m edges.
  EXPECT_EQ(g->num_edges(), m + (n - m - 1) * m);
  EXPECT_EQ(g->num_nodes(), n);
}

TEST(PreferentialAttachmentTest, ArrivalsHaveDegreeAtLeastM) {
  // Every node added after the seed star attaches exactly m edges, so
  // its final degree is >= m (seed-star leaves may stay at degree 1).
  Rng rng(3);
  const size_t m = 4;
  auto g = GeneratePreferentialAttachment(3000, m, &rng);
  ASSERT_TRUE(g.ok());
  for (size_t v = m + 1; v < g->num_nodes(); ++v) {
    ASSERT_GE(g->Degree(static_cast<NodeId>(v)),
              static_cast<int64_t>(m))
        << v;
  }
}

TEST(PreferentialAttachmentTest, HeavyTailEmerges) {
  // Rich-get-richer: the max degree should far exceed the mean, and the
  // top-degree nodes should be early arrivals.
  Rng rng(5);
  const size_t n = 20000;
  auto g = GeneratePreferentialAttachment(n, 2, &rng);
  ASSERT_TRUE(g.ok());
  const double mean_degree =
      2.0 * static_cast<double>(g->num_edges()) / static_cast<double>(n);
  EXPECT_GT(static_cast<double>(g->MaxDegree()), 15.0 * mean_degree);
}

TEST(PreferentialAttachmentTest, MoreClusteredThanUniformAttachment) {
  // BA graphs carry noticeably more triangles than degree-matched
  // expectations from pure randomness at this density.
  Rng rng(7);
  auto g = GeneratePreferentialAttachment(5000, 3, &rng);
  ASSERT_TRUE(g.ok());
  const TriangleStats stats = ComputeTriangleStats(*g);
  EXPECT_GT(stats.triangles, 0u);
  EXPECT_GT(stats.transitivity, 0.0);
}

TEST(PreferentialAttachmentTest, DeterministicGivenSeed) {
  Rng a(11);
  Rng b(11);
  auto ga = GeneratePreferentialAttachment(500, 2, &a);
  auto gb = GeneratePreferentialAttachment(500, 2, &b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(ga->EdgeList(), gb->EdgeList());
}

}  // namespace
}  // namespace trilist
