#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/algo/simd/bitmap_index.h"
#include "src/algo/simd/intersect_engine.h"
#include "src/algo/triangle_sink.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/graph/edge_set.h"
#include "src/obs/degree_profile.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"

/// \file intersect_backend_test.cpp
/// Cross-backend parity for the scanning edge iterators: every
/// intersection backend (merge, gallop, auto, simd, bitmap) must list the
/// exact same triangles in the exact same order, serial and parallel, and
/// the backends sharing the merge counter contract must report identical
/// merge_comparisons. The paper's cost metric (local + remote scans) is
/// backend-independent by construction, and the per-node attribution
/// invariant measured == PaperCost must survive backend routing.

namespace trilist {
namespace {

constexpr Method kSeiMethods[] = {Method::kE1, Method::kE2, Method::kE3,
                                  Method::kE4, Method::kE5, Method::kE6};

constexpr IntersectBackend kAllBackends[] = {
    IntersectBackend::kMerge, IntersectBackend::kGallop,
    IntersectBackend::kAuto, IntersectBackend::kSimd,
    IntersectBackend::kBitmap};

/// Graphs chosen to hit every engine path: hub-heavy stars and power-law
/// tails (bitmap word-AND + probes), dense blocks (vector blocks), and
/// sparse noise (scalar tails / short-span early outs).
OrientedGraph MakeOriented(const std::string& kind, PermutationKind order) {
  Rng rng(4242);
  Graph g = MakeEmpty(0);
  if (kind == "gnp_dense") {
    g = GenerateGnp(90, 0.3, &rng);
  } else if (kind == "gnp_sparse") {
    g = GenerateGnp(300, 0.02, &rng);
  } else if (kind == "star_plus") {
    // A big star whose leaves also form a cycle: hub rows meet long and
    // short rows in every kernel.
    GraphBuilder b(64);
    for (NodeId v = 1; v < 64; ++v) b.AddEdge(0, v);
    for (NodeId v = 1; v < 64; ++v) {
      b.AddEdge(v, v + 1 == 64 ? 1 : v + 1);
    }
    g = std::move(b).Build().ValueOrDie();
  } else if (kind == "k12") {
    g = MakeComplete(12);
  } else {
    ADD_FAILURE() << "unknown graph kind " << kind;
  }
  Rng orient_rng(7);
  return OrientNamed(g, order, &orient_rng);
}

ExecPolicy PolicyFor(IntersectBackend backend, int threads,
                     int bitmap_min_degree) {
  ExecPolicy exec;
  exec.threads = threads;
  exec.intersect = backend;
  exec.bitmap_min_degree = bitmap_min_degree;
  return exec;
}

/// Counters every backend must reproduce exactly; merge_comparisons is
/// checked separately (contract depends on the backend).
void ExpectBackendInvariant(const OpCounts& ref, const OpCounts& got,
                            const std::string& label) {
  EXPECT_EQ(got.triangles, ref.triangles) << label;
  EXPECT_EQ(got.local_scans, ref.local_scans) << label;
  EXPECT_EQ(got.remote_scans, ref.remote_scans) << label;
  EXPECT_EQ(got.binary_searches, ref.binary_searches) << label;
  EXPECT_EQ(got.PaperCost(), ref.PaperCost()) << label;
}

bool SharesMergeCounterContract(IntersectBackend b) {
  return b == IntersectBackend::kMerge || b == IntersectBackend::kSimd ||
         b == IntersectBackend::kBitmap;
}

TEST(IntersectBackendTest, SerialParityAcrossAllBackends) {
  for (const std::string kind :
       {"gnp_dense", "gnp_sparse", "star_plus", "k12"}) {
    // min_degree 1 forces every row into the bitmap index, so the
    // word-AND path actually runs even on small test graphs.
    for (const int min_degree : {0, 1}) {
      const OrientedGraph og =
          MakeOriented(kind, PermutationKind::kDescending);
      for (const Method m : kSeiMethods) {
        CollectingSink ref_sink;
        const OpCounts ref = RunMethod(
            m, og, &ref_sink,
            PolicyFor(IntersectBackend::kMerge, 1, min_degree));
        for (const IntersectBackend backend : kAllBackends) {
          const std::string label = kind + "/" + MethodName(m) + "/" +
                                    IntersectBackendName(backend) +
                                    "/min_degree=" +
                                    std::to_string(min_degree);
          CollectingSink sink;
          const OpCounts got =
              RunMethod(m, og, &sink, PolicyFor(backend, 1, min_degree));
          ExpectBackendInvariant(ref, got, label);
          EXPECT_EQ(sink.triangles(), ref_sink.triangles()) << label;
          if (SharesMergeCounterContract(backend)) {
            EXPECT_EQ(got.merge_comparisons, ref.merge_comparisons)
                << label;
          }
        }
      }
    }
  }
}

TEST(IntersectBackendTest, ParallelParityAcrossAllBackends) {
  // The parallel engine covers E1 and E4; chunks replay in serial order,
  // so emission must stay identical under every backend too.
  for (const std::string kind : {"gnp_dense", "star_plus"}) {
    const OrientedGraph og = MakeOriented(kind, PermutationKind::kDescending);
    for (const Method m : {Method::kE1, Method::kE4}) {
      CollectingSink ref_sink;
      const OpCounts ref = RunMethod(
          m, og, &ref_sink, PolicyFor(IntersectBackend::kMerge, 1, 1));
      for (const IntersectBackend backend : kAllBackends) {
        const std::string label = kind + "/" + MethodName(m) +
                                  "/parallel/" +
                                  IntersectBackendName(backend);
        CollectingSink sink;
        const OpCounts got =
            RunMethod(m, og, &sink, PolicyFor(backend, 3, 1));
        ExpectBackendInvariant(ref, got, label);
        EXPECT_EQ(sink.triangles(), ref_sink.triangles()) << label;
        if (SharesMergeCounterContract(backend)) {
          EXPECT_EQ(got.merge_comparisons, ref.merge_comparisons) << label;
        }
      }
    }
  }
}

TEST(IntersectBackendTest, NonSeiMethodsIgnoreTheBackend) {
  const OrientedGraph og =
      MakeOriented("gnp_dense", PermutationKind::kDescending);
  for (const Method m : {Method::kT1, Method::kT2, Method::kL1}) {
    CollectingSink ref_sink;
    const OpCounts ref = RunMethod(m, og, &ref_sink);
    CollectingSink sink;
    const OpCounts got = RunMethod(
        m, og, &sink, PolicyFor(IntersectBackend::kBitmap, 1, 1));
    EXPECT_EQ(got.triangles, ref.triangles) << MethodName(m);
    EXPECT_EQ(got.candidate_checks, ref.candidate_checks) << MethodName(m);
    EXPECT_EQ(got.lookups, ref.lookups) << MethodName(m);
    EXPECT_EQ(sink.triangles(), ref_sink.triangles()) << MethodName(m);
  }
}

TEST(IntersectBackendTest, AttributionInvariantHoldsForEveryBackend) {
  // The op hook charges span lengths to nodes; no intersection algorithm
  // changes span lengths, so per-node sums must equal PaperCost under
  // every backend.
  const OrientedGraph og =
      MakeOriented("star_plus", PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og);
  for (const Method m : kSeiMethods) {
    for (const IntersectBackend backend : kAllBackends) {
      const std::string label = std::string(MethodName(m)) + "/" +
                                IntersectBackendName(backend);
      obs::NodeOpsRecorder recorder(og.num_nodes());
      CountingSink sink;
      const OpCounts ops = RunMethodProfiled(m, og, arcs, &sink, &recorder,
                                             PolicyFor(backend, 1, 1));
      EXPECT_EQ(recorder.Total(), ops.PaperCost()) << label;
    }
  }
}

TEST(IntersectBackendTest, BitmapIndexStructure) {
  const OrientedGraph og =
      MakeOriented("star_plus", PermutationKind::kDescending);
  simd::BitmapIndex::Options opts;
  opts.min_degree = 4;
  const simd::BitmapIndex index = simd::BitmapIndex::Build(og, opts);
  EXPECT_EQ(index.threshold(), 4);
  EXPECT_GT(index.num_hubs(), 0u);
  size_t hubs = 0;
  const auto n = static_cast<NodeId>(og.num_nodes());
  for (NodeId v = 0; v < n; ++v) {
    for (const bool out : {true, false}) {
      const auto row = out ? og.OutNeighbors(v) : og.InNeighbors(v);
      const auto hub = out ? index.OutHub(v) : index.InHub(v);
      if (static_cast<int64_t>(row.size()) >= opts.min_degree) {
        ASSERT_TRUE(static_cast<bool>(hub)) << v << " out=" << out;
        ++hubs;
        // The bitmap holds exactly the row's labels, nothing else.
        for (const NodeId u : row) {
          EXPECT_TRUE(hub.Test(u)) << v << " " << u;
        }
        size_t bits = 0;
        for (NodeId u = 0; u < n; ++u) bits += hub.Test(u) ? 1 : 0;
        EXPECT_EQ(bits, row.size()) << v << " out=" << out;
      } else {
        EXPECT_FALSE(static_cast<bool>(hub)) << v << " out=" << out;
      }
      // No row ever contains its own node.
      EXPECT_FALSE(hub.Test(v));
    }
  }
  EXPECT_EQ(hubs, index.num_hubs());
  EXPECT_GT(hubs, 0u);
  EXPECT_GT(index.bytes(), 0u);
}

TEST(IntersectBackendTest, ParseAndNameRoundTrip) {
  for (const IntersectBackend backend : kAllBackends) {
    IntersectBackend parsed = IntersectBackend::kMerge;
    ASSERT_TRUE(
        ParseIntersectBackend(IntersectBackendName(backend), &parsed));
    EXPECT_EQ(parsed, backend);
  }
  IntersectBackend parsed = IntersectBackend::kAuto;
  EXPECT_FALSE(ParseIntersectBackend("bogus", &parsed));
  EXPECT_EQ(parsed, IntersectBackend::kAuto);  // untouched on failure
}

}  // namespace
}  // namespace trilist
