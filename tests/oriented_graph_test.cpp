#include "src/graph/oriented_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/graph/edge_set.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(OrientedGraphTest, TriangleUnderIdentityLabels) {
  const Graph g = MakeComplete(3);
  const std::vector<NodeId> labels = {0, 1, 2};
  const OrientedGraph og = OrientedGraph::FromLabels(g, labels);
  EXPECT_EQ(og.num_nodes(), 3u);
  EXPECT_EQ(og.num_arcs(), 3u);
  EXPECT_EQ(og.OutDegree(0), 0);
  EXPECT_EQ(og.OutDegree(1), 1);
  EXPECT_EQ(og.OutDegree(2), 2);
  EXPECT_EQ(og.InDegree(0), 2);
  EXPECT_EQ(og.InDegree(2), 0);
  EXPECT_TRUE(og.HasArc(2, 0));
  EXPECT_TRUE(og.HasArc(2, 1));
  EXPECT_TRUE(og.HasArc(1, 0));
  EXPECT_FALSE(og.HasArc(0, 1));
  EXPECT_FALSE(og.HasArc(0, 2));
}

TEST(OrientedGraphTest, RelabelingPermutesStructure) {
  // Path 0-1-2 with labels reversed: original 0 -> label 2, etc.
  const Graph g = MakePath(3);
  const OrientedGraph og =
      OrientedGraph::FromLabels(g, {2, 1, 0});
  EXPECT_EQ(og.OriginalOf(2), 0u);
  EXPECT_EQ(og.OriginalOf(0), 2u);
  // Original edges (0,1) and (1,2) become arcs 2->1 and 1->0.
  EXPECT_TRUE(og.HasArc(2, 1));
  EXPECT_TRUE(og.HasArc(1, 0));
  EXPECT_FALSE(og.HasArc(2, 0));
}

TEST(OrientedGraphTest, ListsAreSortedAndPartitioned) {
  Rng rng(3);
  const Graph g = GenerateGnp(200, 0.05, &rng);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kUniform, &rng);
  for (size_t i = 0; i < og.num_nodes(); ++i) {
    const auto node = static_cast<NodeId>(i);
    const auto out = og.OutNeighbors(node);
    const auto in = og.InNeighbors(node);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
    for (NodeId w : out) EXPECT_LT(w, node);
    for (NodeId w : in) EXPECT_GT(w, node);
    EXPECT_EQ(og.TotalDegree(node), og.OutDegree(node) + og.InDegree(node));
  }
}

class OrientationInvariantTest
    : public ::testing::TestWithParam<PermutationKind> {};

TEST_P(OrientationInvariantTest, ArcCountsAndDegreeSums) {
  Rng rng(17);
  const Graph g = GenerateGnp(300, 0.03, &rng);
  const OrientedGraph og = OrientNamed(g, GetParam(), &rng);
  EXPECT_EQ(og.num_arcs(), g.num_edges());
  int64_t sum_x = 0;
  int64_t sum_y = 0;
  for (size_t i = 0; i < og.num_nodes(); ++i) {
    sum_x += og.OutDegree(static_cast<NodeId>(i));
    sum_y += og.InDegree(static_cast<NodeId>(i));
  }
  // sum X_i = sum Y_i = m (Section 2.3).
  EXPECT_EQ(sum_x, static_cast<int64_t>(g.num_edges()));
  EXPECT_EQ(sum_y, static_cast<int64_t>(g.num_edges()));
}

TEST_P(OrientationInvariantTest, TotalDegreePreserved) {
  Rng rng(19);
  const Graph g = GenerateGnp(300, 0.03, &rng);
  const OrientedGraph og = OrientNamed(g, GetParam(), &rng);
  for (size_t i = 0; i < og.num_nodes(); ++i) {
    const auto node = static_cast<NodeId>(i);
    EXPECT_EQ(og.TotalDegree(node),
              g.Degree(og.OriginalOf(node)));
  }
}

TEST_P(OrientationInvariantTest, OriginalOfIsBijective) {
  Rng rng(23);
  const Graph g = GenerateGnp(100, 0.1, &rng);
  const OrientedGraph og = OrientNamed(g, GetParam(), &rng);
  std::vector<bool> seen(g.num_nodes(), false);
  for (size_t i = 0; i < og.num_nodes(); ++i) {
    const NodeId orig = og.OriginalOf(static_cast<NodeId>(i));
    ASSERT_LT(orig, g.num_nodes());
    EXPECT_FALSE(seen[orig]);
    seen[orig] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, OrientationInvariantTest,
    ::testing::Values(PermutationKind::kAscending,
                      PermutationKind::kDescending,
                      PermutationKind::kRoundRobin,
                      PermutationKind::kComplementaryRoundRobin,
                      PermutationKind::kUniform,
                      PermutationKind::kDegenerate));

TEST(OrientedGraphTest, AscendingDegreeRanksSortByDegreeThenId) {
  // Degrees: star center 0 has degree 4, leaves degree 1.
  const Graph g = MakeStar(5);
  const auto rank = AscendingDegreeRanks(g);
  EXPECT_EQ(rank[0], 4u);  // the hub is last
  // Leaves keep ID order.
  EXPECT_EQ(rank[1], 0u);
  EXPECT_EQ(rank[2], 1u);
  EXPECT_EQ(rank[3], 2u);
  EXPECT_EQ(rank[4], 3u);
}

TEST(OrientedGraphTest, DescendingOrientationBoundsHubOutDegree) {
  // Under theta_D the hub gets the smallest label, hence out-degree 0.
  const Graph g = MakeStar(6);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  // Hub's label is 0.
  EXPECT_EQ(og.OriginalOf(0), 0u);
  EXPECT_EQ(og.OutDegree(0), 0);
  EXPECT_EQ(og.InDegree(0), 5);
}

TEST(OrientedGraphTest, AscendingOrientationGivesHubFullOutDegree) {
  const Graph g = MakeStar(6);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kAscending);
  const auto hub_label = static_cast<NodeId>(5);
  EXPECT_EQ(og.OriginalOf(hub_label), 0u);
  EXPECT_EQ(og.OutDegree(hub_label), 5);
}

TEST(DirectedEdgeSetTest, ContainsExactlyTheArcs) {
  Rng rng(29);
  const Graph g = GenerateGnp(80, 0.1, &rng);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kUniform, &rng);
  const DirectedEdgeSet arcs(og);
  EXPECT_EQ(arcs.size(), og.num_arcs());
  for (size_t i = 0; i < og.num_nodes(); ++i) {
    const auto from = static_cast<NodeId>(i);
    for (NodeId to : og.OutNeighbors(from)) {
      EXPECT_TRUE(arcs.Contains(from, to));
      EXPECT_FALSE(arcs.Contains(to, from));
    }
  }
  EXPECT_FALSE(arcs.Contains(0, 0));
}

}  // namespace
}  // namespace trilist
