#include "src/util/flat_hash_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(FlatHashSetTest, StartsEmpty) {
  FlatHashSet64 s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains(0));
}

TEST(FlatHashSetTest, InsertAndContains) {
  FlatHashSet64 s;
  EXPECT_TRUE(s.Insert(7));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(8));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatHashSetTest, DuplicateInsertReturnsFalse) {
  FlatHashSet64 s;
  EXPECT_TRUE(s.Insert(100));
  EXPECT_FALSE(s.Insert(100));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatHashSetTest, GrowsBeyondInitialCapacity) {
  FlatHashSet64 s;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(s.Insert(i * 2654435761ull));
  }
  EXPECT_EQ(s.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(s.Contains(i * 2654435761ull));
  }
  EXPECT_FALSE(s.Contains(999999999999ull));
}

TEST(FlatHashSetTest, EraseRemovesAndKeepsChains) {
  FlatHashSet64 s;
  for (uint64_t i = 0; i < 1000; ++i) s.Insert(i);
  // Delete evens; odds must still be findable despite probe-chain shifts.
  for (uint64_t i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(s.Erase(i));
  }
  EXPECT_EQ(s.size(), 500u);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(s.Contains(i), i % 2 == 1) << i;
  }
}

TEST(FlatHashSetTest, EraseMissingReturnsFalse) {
  FlatHashSet64 s;
  s.Insert(5);
  EXPECT_FALSE(s.Erase(6));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatHashSetTest, ClearKeepsCapacityDropsKeys) {
  FlatHashSet64 s;
  for (uint64_t i = 0; i < 100; ++i) s.Insert(i);
  s.Clear();
  EXPECT_TRUE(s.empty());
  for (uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(s.Contains(i));
  EXPECT_TRUE(s.Insert(3));
}

TEST(FlatHashSetTest, ReserveAvoidsRehash) {
  FlatHashSet64 s(100000);
  for (uint64_t i = 0; i < 100000; ++i) s.Insert(i + 1);
  EXPECT_EQ(s.size(), 100000u);
}

TEST(FlatHashSetTest, RandomizedAgainstStdSet) {
  Rng rng(77);
  FlatHashSet64 s;
  std::set<uint64_t> reference;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.NextBounded(512);  // force collisions
    switch (rng.NextBounded(3)) {
      case 0: {
        const bool inserted = s.Insert(key);
        EXPECT_EQ(inserted, reference.insert(key).second);
        break;
      }
      case 1: {
        const bool erased = s.Erase(key);
        EXPECT_EQ(erased, reference.erase(key) > 0);
        break;
      }
      default:
        EXPECT_EQ(s.Contains(key), reference.count(key) > 0);
    }
    ASSERT_EQ(s.size(), reference.size());
  }
  for (uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(s.Contains(key), reference.count(key) > 0) << key;
  }
}

}  // namespace
}  // namespace trilist
