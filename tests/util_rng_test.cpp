#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace trilist {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) ~ 0.5 with sd 1/sqrt(12 kN) ~ 0.0009.
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(17);
  const uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / static_cast<int>(kBuckets), 600);
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child should not replay the parent's outputs.
  Rng parent2(23);
  parent2.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == parent.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(29);
  Rng b(29);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.Next(), cb.Next());
}

TEST(Mix64Test, StatelessAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(&state);
  const uint64_t second = SplitMix64(&state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace trilist
