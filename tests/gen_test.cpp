#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/configuration_model.h"
#include "src/gen/erdos_renyi.h"
#include "src/gen/residual_generator.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// Erdos-Renyi.
// ---------------------------------------------------------------------------

TEST(GnpTest, EdgeCountMatchesExpectation) {
  Rng rng(1);
  const size_t n = 500;
  const double p = 0.02;
  double edges = 0;
  const int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    edges += static_cast<double>(GenerateGnp(n, p, &rng).num_edges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(edges / kTrials, expected, expected * 0.1);
}

TEST(GnpTest, ExtremeProbabilities) {
  Rng rng(2);
  EXPECT_EQ(GenerateGnp(50, 0.0, &rng).num_edges(), 0u);
  EXPECT_EQ(GenerateGnp(10, 1.0, &rng).num_edges(), 45u);
  EXPECT_EQ(GenerateGnp(0, 0.5, &rng).num_nodes(), 0u);
  EXPECT_EQ(GenerateGnp(1, 0.5, &rng).num_edges(), 0u);
}

TEST(GnmTest, ExactEdgeCountAndSimplicity) {
  Rng rng(3);
  const Graph g = GenerateGnm(100, 500, &rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);  // construction validates simplicity
}

TEST(GnmTest, FullAndEmpty) {
  Rng rng(4);
  EXPECT_EQ(GenerateGnm(5, 10, &rng).num_edges(), 10u);
  EXPECT_EQ(GenerateGnm(5, 0, &rng).num_edges(), 0u);
}

// ---------------------------------------------------------------------------
// Configuration model.
// ---------------------------------------------------------------------------

TEST(ConfigModelTest, RealizesLightSequencesClosely) {
  Rng rng(5);
  std::vector<int64_t> degrees(200, 3);
  ConfigModelStats stats;
  auto g = ConfigurationModel(degrees, &rng, &stats);
  ASSERT_TRUE(g.ok());
  // Light constant degrees: only a few collisions expected.
  EXPECT_LE(stats.TotalDroppedStubs(), 20);
  int64_t realized = 0;
  for (size_t v = 0; v < 200; ++v) realized += g->Degree(static_cast<NodeId>(v));
  EXPECT_EQ(realized, 600 - stats.TotalDroppedStubs());
}

TEST(ConfigModelTest, OddSumDropsOneStub) {
  Rng rng(6);
  std::vector<int64_t> degrees = {3, 2, 2, 2};  // sum 9
  ConfigModelStats stats;
  auto g = ConfigurationModel(degrees, &rng, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(stats.odd_stub_dropped, 1);
}

TEST(ConfigModelTest, RejectsInvalidDegrees) {
  Rng rng(7);
  EXPECT_FALSE(ConfigurationModel({-1, 1}, &rng).ok());
  EXPECT_FALSE(ConfigurationModel({5, 1, 1, 1}, &rng).ok());
}

TEST(ConfigModelTest, UnderRealizesHeavyTails) {
  // The Section 7.2 motivation: simplified stub matching loses stubs on
  // heavy-tailed inputs, which is why the residual generator exists.
  Rng rng(8);
  const size_t n = 2000;
  const DiscretePareto base(1.2, 6.0);
  const TruncatedDistribution fn(base, static_cast<int64_t>(n) - 1);
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  MakeGraphic(&degrees);
  ConfigModelStats stats;
  auto g = ConfigurationModel(degrees, &rng, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(stats.TotalDroppedStubs(), 10);  // visible shortfall
}

// ---------------------------------------------------------------------------
// Residual-degree generator (Section 7.2).
// ---------------------------------------------------------------------------

void ExpectExactRealization(const std::vector<int64_t>& degrees,
                            const Graph& g, int64_t allowed_shortfall) {
  int64_t shortfall = 0;
  for (size_t v = 0; v < degrees.size(); ++v) {
    const int64_t got = g.Degree(static_cast<NodeId>(v));
    ASSERT_LE(got, degrees[v]) << v;
    shortfall += degrees[v] - got;
  }
  EXPECT_LE(shortfall, allowed_shortfall);
}

TEST(ResidualGenTest, RealizesRegularSequencesExactly) {
  Rng rng(9);
  std::vector<int64_t> degrees(100, 4);
  ResidualGenStats stats;
  auto g = GenerateExactDegree(degrees, &rng, &stats);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ExpectExactRealization(degrees, *g, 0);
  EXPECT_EQ(stats.unplaced_stubs, 0);
}

TEST(ResidualGenTest, RealizesStarAndClique) {
  Rng rng(10);
  {
    std::vector<int64_t> star = {5, 1, 1, 1, 1, 1};
    auto g = GenerateExactDegree(star, &rng);
    ASSERT_TRUE(g.ok());
    ExpectExactRealization(star, *g, 0);
  }
  {
    std::vector<int64_t> clique(6, 5);
    auto g = GenerateExactDegree(clique, &rng);
    ASSERT_TRUE(g.ok());
    ExpectExactRealization(clique, *g, 0);
    EXPECT_EQ(g->num_edges(), 15u);
  }
}

TEST(ResidualGenTest, OddSumLeavesOneStub) {
  Rng rng(11);
  std::vector<int64_t> degrees = {3, 2, 2, 2};  // sum 9, graphic after fix
  ResidualGenStats stats;
  auto g = GenerateExactDegree(degrees, &rng, &stats);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(stats.unplaced_stubs, 1);
  ExpectExactRealization(degrees, *g, 1);
}

TEST(ResidualGenTest, RejectsOutOfRangeDegrees) {
  Rng rng(12);
  EXPECT_FALSE(GenerateExactDegree({4, 1, 1, 1}, &rng).ok());
  EXPECT_FALSE(GenerateExactDegree({-2, 1, 1}, &rng).ok());
}

TEST(ResidualGenTest, EmptyAndTrivialInputs) {
  Rng rng(13);
  EXPECT_TRUE(GenerateExactDegree({}, &rng).ok());
  auto g = GenerateExactDegree({0, 0, 0}, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 0u);
}

class ResidualGenParetoTest
    : public ::testing::TestWithParam<std::tuple<double, TruncationKind>> {};

TEST_P(ResidualGenParetoTest, RealizesHeavyTailedSequencesExactly) {
  const auto [alpha, trunc] = GetParam();
  const size_t n = 3000;
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t = TruncationPoint(trunc, static_cast<int64_t>(n));
  const TruncatedDistribution fn(base, t);
  Rng rng(1000 + static_cast<uint64_t>(alpha * 10));
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<int64_t> degrees(n);
    for (auto& d : degrees) d = fn.Sample(&rng);
    MakeGraphic(&degrees);
    const int64_t parity =
        std::accumulate(degrees.begin(), degrees.end(), int64_t{0}) % 2;
    ResidualGenStats stats;
    auto g = GenerateExactDegree(degrees, &rng, &stats);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    // Exact realization except possibly one stub for odd sums.
    ExpectExactRealization(degrees, *g, parity);
    EXPECT_EQ(stats.unplaced_stubs, parity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaTruncationSweep, ResidualGenParetoTest,
    ::testing::Combine(::testing::Values(1.2, 1.5, 1.7, 2.1, 3.0),
                       ::testing::Values(TruncationKind::kRoot,
                                         TruncationKind::kLinear)));

TEST(ResidualGenTest, StrictModeRejectsImpossibleResiduals) {
  // Non-graphic sequence: two nodes demanding 3 edges each among 4 nodes
  // where the others want none at all.
  Rng rng(14);
  ResidualGenOptions options;
  options.strict = true;
  auto g = GenerateExactDegree({3, 3, 0, 0}, &rng, nullptr, options);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kGenerationStuck);
}

TEST(ResidualGenTest, NonStrictReturnsBestEffort) {
  Rng rng(15);
  ResidualGenOptions options;
  options.strict = false;
  ResidualGenStats stats;
  auto g = GenerateExactDegree({3, 3, 0, 0}, &rng, &stats, options);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(stats.unplaced_stubs, 0);
}

TEST(ResidualGenTest, DeterministicGivenSeed) {
  std::vector<int64_t> degrees = {4, 3, 3, 2, 2, 2, 1, 1, 1, 1};
  Rng rng1(77);
  Rng rng2(77);
  auto g1 = GenerateExactDegree(degrees, &rng1);
  auto g2 = GenerateExactDegree(degrees, &rng2);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1->EdgeList(), g2->EdgeList());
}

}  // namespace
}  // namespace trilist
