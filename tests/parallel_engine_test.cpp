#include "src/algo/parallel_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/configuration_model.h"
#include "src/gen/erdos_renyi.h"
#include "src/gen/preferential_attachment.h"
#include "src/graph/builder.h"
#include "src/order/pipeline.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// Thread-pool primitive.

TEST(ParallelForTest, EveryChunkRunsExactlyOnce) {
  constexpr size_t kChunks = 1000;
  std::vector<std::atomic<int>> hits(kChunks);
  for (auto& h : hits) h.store(0);
  ThreadPool pool(8);
  pool.ParallelFor(kChunks, [&](size_t c) { hits[c].fetch_add(1); });
  for (size_t c = 0; c < kChunks; ++c) {
    ASSERT_EQ(hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ParallelForTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(round + 1, [&](size_t c) {
      sum.fetch_add(static_cast<int64_t>(c));
    });
    EXPECT_EQ(sum.load(), static_cast<int64_t>(round) * (round + 1) / 2);
  }
}

TEST(ParallelForTest, DegenerateShapesRunInline) {
  int calls = 0;
  ParallelFor(1, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
  ParallelFor(8, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
  ParallelFor(8, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 6);
}

TEST(ParallelForTest, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t c) {
                         if (c == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> ok{0};
  pool.ParallelFor(8, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ParallelForTest, PrefixSumMatchesSerialScan) {
  Rng rng(7);
  std::vector<size_t> values(1237);
  for (auto& v : values) v = rng.NextBounded(100);
  std::vector<size_t> expected = values;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<size_t> actual = values;
    ParallelInclusivePrefixSum(&pool, &actual);
    EXPECT_EQ(actual, expected) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Parallel/serial equivalence of the listing engine.

/// The three random families of the equivalence matrix: ER, Pareto
/// configuration model, preferential attachment; plus a clique, whose
/// orientation concentrates all work on hub rows and so exercises the
/// mid-vertex chunk cuts.
Graph MakeEquivalenceGraph(const std::string& kind) {
  Rng rng(20170514);
  if (kind == "er") return GenerateGnp(400, 0.025, &rng);
  if (kind == "config_pareto") {
    const DiscretePareto base = DiscretePareto::PaperParameterization(1.5);
    const TruncatedDistribution fn(base, 60);
    std::vector<int64_t> degrees(600);
    for (auto& d : degrees) d = fn.Sample(&rng);
    MakeGraphic(&degrees);
    return ConfigurationModel(degrees, &rng).ValueOrDie();
  }
  if (kind == "pa") {
    return GeneratePreferentialAttachment(400, 4, &rng).ValueOrDie();
  }
  if (kind == "clique") return MakeComplete(40);
  ADD_FAILURE() << "unknown graph kind " << kind;
  return Graph();
}

void ExpectSameOps(const OpCounts& a, const OpCounts& b,
                   const std::string& label) {
  EXPECT_EQ(a.candidate_checks, b.candidate_checks) << label;
  EXPECT_EQ(a.local_scans, b.local_scans) << label;
  EXPECT_EQ(a.remote_scans, b.remote_scans) << label;
  EXPECT_EQ(a.merge_comparisons, b.merge_comparisons) << label;
  EXPECT_EQ(a.hash_inserts, b.hash_inserts) << label;
  EXPECT_EQ(a.lookups, b.lookups) << label;
  EXPECT_EQ(a.binary_searches, b.binary_searches) << label;
  EXPECT_EQ(a.triangles, b.triangles) << label;
}

TEST(ParallelEngineTest, MatchesSerialOnAllFamiliesMethodsAndWidths) {
  for (const std::string kind : {"er", "config_pareto", "pa", "clique"}) {
    const Graph g = MakeEquivalenceGraph(kind);
    for (PermutationKind order :
         {PermutationKind::kDescending, PermutationKind::kRoundRobin}) {
      Rng rng(3);
      const OrientedGraph og = OrientNamed(g, order, &rng);
      const DirectedEdgeSet arcs(og);
      for (Method m :
           {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
        CollectingSink serial_sink;
        const OpCounts serial = RunMethod(m, og, arcs, &serial_sink);
        for (int threads : {1, 2, 8}) {
          const std::string label = kind + "/" + MethodName(m) +
                                    "/threads=" + std::to_string(threads);
          ExecPolicy exec;
          exec.threads = threads;
          CollectingSink parallel_sink;
          const OpCounts parallel =
              RunMethodParallel(m, og, arcs, &parallel_sink, exec);
          ExpectSameOps(serial, parallel, label);
          // Not just the same multiset: the deterministic merge replays
          // chunks in serial order, so the emission sequence is identical.
          EXPECT_EQ(serial_sink.triangles(), parallel_sink.triangles())
              << label;
        }
      }
    }
  }
}

TEST(ParallelEngineTest, FineChunkingStaysExact) {
  // Far more chunks than work: boundary handling must not drop or
  // duplicate positions even when most chunks are empty.
  const Graph g = MakeComplete(12);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og);
  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    CollectingSink serial_sink;
    const OpCounts serial = RunMethod(m, og, arcs, &serial_sink);
    ExecPolicy exec;
    exec.threads = 8;
    exec.chunks_per_thread = 64;  // 512 chunks over ~66 arcs
    CollectingSink parallel_sink;
    const OpCounts parallel =
        RunMethodParallel(m, og, arcs, &parallel_sink, exec);
    ExpectSameOps(serial, parallel, MethodName(m));
    EXPECT_EQ(serial_sink.triangles(), parallel_sink.triangles());
  }
}

TEST(ParallelEngineTest, SupportsParallelIsExactlyTheFundamentalSet) {
  for (Method m : AllMethods()) {
    const bool expected = m == Method::kT1 || m == Method::kT2 ||
                          m == Method::kE1 || m == Method::kE4;
    EXPECT_EQ(SupportsParallel(m), expected) << MethodName(m);
  }
}

TEST(ParallelEngineTest, UnsupportedMethodsFallBackToSerial) {
  const Graph g = MakeEquivalenceGraph("er");
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  for (Method m : {Method::kT3, Method::kE5, Method::kL1}) {
    CollectingSink serial_sink;
    const OpCounts serial = RunMethod(m, og, &serial_sink);
    ExecPolicy exec;
    exec.threads = 8;
    CollectingSink fallback_sink;
    const OpCounts fallback = RunMethod(m, og, &fallback_sink, exec);
    ExpectSameOps(serial, fallback, MethodName(m));
    EXPECT_EQ(serial_sink.triangles(), fallback_sink.triangles());
  }
}

TEST(ParallelEngineTest, RegistryPolicyOverloadBuildsArcsItself) {
  const Graph g = MakeEquivalenceGraph("config_pareto");
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  for (Method m : {Method::kT1, Method::kE4}) {
    CollectingSink serial_sink;
    const OpCounts serial = RunMethod(m, og, &serial_sink);
    ExecPolicy exec;
    exec.threads = 4;
    CollectingSink parallel_sink;
    const OpCounts parallel = RunMethod(m, og, &parallel_sink, exec);
    ExpectSameOps(serial, parallel, MethodName(m));
    EXPECT_EQ(serial_sink.triangles(), parallel_sink.triangles());
  }
}

TEST(ParallelEngineTest, EmptyAndTriangleFreeGraphs) {
  for (const Graph& g : {MakeEmpty(30), MakeStar(30), MakePath(30)}) {
    const OrientedGraph og = OrientNamed(g, PermutationKind::kAscending);
    for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
      ExecPolicy exec;
      exec.threads = 8;
      CountingSink sink;
      const OpCounts ops = RunMethodParallel(m, og, &sink, exec);
      EXPECT_EQ(sink.count(), 0u);
      EXPECT_EQ(ops.triangles, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel orientation.

TEST(ParallelOrientTest, FromLabelsMatchesSerialForAnyThreadCount) {
  for (const std::string kind : {"er", "config_pareto", "pa", "clique"}) {
    const Graph g = MakeEquivalenceGraph(kind);
    for (PermutationKind order :
         {PermutationKind::kDescending, PermutationKind::kRoundRobin,
          PermutationKind::kDegenerate}) {
      Rng rng_serial(5);
      const OrientedGraph serial = OrientNamed(g, order, &rng_serial);
      for (int threads : {2, 8}) {
        Rng rng_parallel(5);
        const OrientedGraph parallel =
            OrientNamed(g, order, &rng_parallel, threads);
        const std::string label = kind + "/threads=" +
                                  std::to_string(threads);
        ASSERT_EQ(serial.num_nodes(), parallel.num_nodes()) << label;
        ASSERT_EQ(serial.num_arcs(), parallel.num_arcs()) << label;
        EXPECT_TRUE(std::equal(serial.original_of().begin(),
                               serial.original_of().end(),
                               parallel.original_of().begin(),
                               parallel.original_of().end()))
            << label;
        for (size_t i = 0; i < serial.num_nodes(); ++i) {
          const auto node = static_cast<NodeId>(i);
          const auto so = serial.OutNeighbors(node);
          const auto po = parallel.OutNeighbors(node);
          ASSERT_TRUE(std::equal(so.begin(), so.end(), po.begin(),
                                 po.end()))
              << label << " out row " << i;
          const auto si = serial.InNeighbors(node);
          const auto pi = parallel.InNeighbors(node);
          ASSERT_TRUE(std::equal(si.begin(), si.end(), pi.begin(),
                                 pi.end()))
              << label << " in row " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace trilist
