#include "src/core/limits.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/fast_model.h"
#include "src/core/h_function.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// Finiteness thresholds (Sections 4.2, 5.3, 6.3).
// ---------------------------------------------------------------------------

TEST(FinitenessTest, VanishingOrders) {
  EXPECT_EQ(VanishingOrderAtOne(Method::kT1, XiMap::Descending()), 2);
  EXPECT_EQ(VanishingOrderAtOne(Method::kT1, XiMap::Ascending()), 0);
  EXPECT_EQ(VanishingOrderAtOne(Method::kT2, XiMap::Descending()), 1);
  EXPECT_EQ(VanishingOrderAtOne(Method::kT2, XiMap::RoundRobin()), 1);
  EXPECT_EQ(VanishingOrderAtOne(Method::kE1, XiMap::Descending()), 1);
  EXPECT_EQ(VanishingOrderAtOne(Method::kE1, XiMap::RoundRobin()), 0);
  EXPECT_EQ(VanishingOrderAtOne(Method::kE4,
                                XiMap::ComplementaryRoundRobin()),
            0);
  EXPECT_EQ(VanishingOrderAtOne(Method::kT1, XiMap::Uniform()), 0);
}

TEST(FinitenessTest, PaperThresholds) {
  // T1 + theta_D finite iff alpha > 4/3 (Eq. 4 discussion).
  EXPECT_NEAR(FinitenessThresholdAlpha(Method::kT1, XiMap::Descending()),
              4.0 / 3.0, 1e-9);
  // T1 + theta_A finite iff alpha > 2.
  EXPECT_NEAR(FinitenessThresholdAlpha(Method::kT1, XiMap::Ascending()),
              2.0, 1e-9);
  // T2 finite iff alpha > 1.5 under both theta_D and RR.
  EXPECT_NEAR(FinitenessThresholdAlpha(Method::kT2, XiMap::Descending()),
              1.5, 1e-9);
  EXPECT_NEAR(FinitenessThresholdAlpha(Method::kT2, XiMap::RoundRobin()),
              1.5, 1e-9);
  // E1 + theta_D finite iff alpha > 1.5 (Eq. 35); E1 + RR needs alpha > 2
  // (Eq. 36).
  EXPECT_NEAR(FinitenessThresholdAlpha(Method::kE1, XiMap::Descending()),
              1.5, 1e-9);
  EXPECT_NEAR(FinitenessThresholdAlpha(Method::kE1, XiMap::RoundRobin()),
              2.0, 1e-9);
  // CRR with any method: alpha > 2 (Section 5.3).
  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    EXPECT_NEAR(FinitenessThresholdAlpha(
                    m, XiMap::ComplementaryRoundRobin()),
                2.0, 1e-9)
        << MethodName(m);
  }
}

TEST(FinitenessTest, IsFinitePredicate) {
  const XiMap d = XiMap::Descending();
  EXPECT_TRUE(IsFiniteAsymptoticCost(Method::kT1, d, 1.4));
  EXPECT_FALSE(IsFiniteAsymptoticCost(Method::kT1, d, 4.0 / 3.0));
  EXPECT_FALSE(IsFiniteAsymptoticCost(Method::kE1, d, 1.4));
  EXPECT_TRUE(IsFiniteAsymptoticCost(Method::kE1, d, 1.6));
}

TEST(FinitenessTest, DivergenceShowsUpInTruncatedModels) {
  // Below the threshold the truncated model must keep growing with t_n;
  // above it, it must plateau.
  const XiMap d = XiMap::Descending();
  {
    const DiscretePareto heavy(1.25, 7.5);  // below 4/3 for T1
    const TruncatedDistribution f1(heavy, 1 << 18);
    const TruncatedDistribution f2(heavy, 1 << 24);
    const double c1 = FastDiscreteCost(f1, 1 << 18, Method::kT1, d,
                                       WeightFn::Identity(), 1e-4);
    const double c2 = FastDiscreteCost(f2, 1 << 24, Method::kT1, d,
                                       WeightFn::Identity(), 1e-4);
    EXPECT_GT(c2, c1 * 1.5);
  }
  {
    const DiscretePareto light(1.7, 21.0);  // above 1.5 for E1
    const TruncatedDistribution f1(light, int64_t{1} << 24);
    const TruncatedDistribution f2(light, int64_t{1} << 30);
    const double c1 = FastDiscreteCost(f1, int64_t{1} << 24, Method::kE1,
                                       d, WeightFn::Identity(), 1e-4);
    const double c2 = FastDiscreteCost(f2, int64_t{1} << 30, Method::kE1,
                                       d, WeightFn::Identity(), 1e-4);
    EXPECT_NEAR(c2, c1, c1 * 0.02);
  }
}

// ---------------------------------------------------------------------------
// Theorems 4-5: comparisons under optimal permutations.
// ---------------------------------------------------------------------------

class ComparisonAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ComparisonAlphaTest, Theorem4_T1BeatsT2) {
  const double alpha = GetParam();
  const DiscretePareto f = DiscretePareto::PaperParameterization(alpha);
  const double c_t1 = AsymptoticCost(f, Method::kT1, XiMap::Descending());
  const double c_t2 = AsymptoticCost(f, Method::kT2, XiMap::RoundRobin());
  EXPECT_LT(c_t1, c_t2) << "alpha=" << alpha;
}

TEST_P(ComparisonAlphaTest, Theorem5_E1BeatsE4) {
  const double alpha = GetParam();
  const DiscretePareto f = DiscretePareto::PaperParameterization(alpha);
  const double c_e1 = AsymptoticCost(f, Method::kE1, XiMap::Descending());
  const double c_e4 =
      AsymptoticCost(f, Method::kE4, XiMap::ComplementaryRoundRobin());
  EXPECT_LT(c_e1, c_e4) << "alpha=" << alpha;
}

TEST_P(ComparisonAlphaTest, OptimalMapBeatsNamedAlternatives) {
  const double alpha = GetParam();
  const DiscretePareto f = DiscretePareto::PaperParameterization(alpha);
  struct Case {
    Method m;
    XiMap best;
    std::vector<XiMap> rest;
  };
  const Case cases[] = {
      {Method::kT1,
       XiMap::Descending(),
       {XiMap::Ascending(), XiMap::RoundRobin(),
        XiMap::ComplementaryRoundRobin(), XiMap::Uniform()}},
      {Method::kT2,
       XiMap::RoundRobin(),
       {XiMap::Descending(), XiMap::ComplementaryRoundRobin(),
        XiMap::Uniform()}},
      {Method::kE1,
       XiMap::Descending(),
       {XiMap::Ascending(), XiMap::RoundRobin(),
        XiMap::ComplementaryRoundRobin(), XiMap::Uniform()}},
      {Method::kE4,
       XiMap::ComplementaryRoundRobin(),
       {XiMap::Descending(), XiMap::RoundRobin(), XiMap::Uniform()}},
  };
  // Use a moderately truncated model so diverging combinations still have
  // comparable finite values.
  const int64_t t = 1 << 22;
  const TruncatedDistribution fn(f, t);
  for (const Case& c : cases) {
    const double best = FastDiscreteCost(fn, t, c.m, c.best,
                                         WeightFn::Identity(), 1e-4);
    for (const XiMap& other : c.rest) {
      const double alt =
          FastDiscreteCost(fn, t, c.m, other, WeightFn::Identity(), 1e-4);
      EXPECT_LE(best, alt * (1.0 + 1e-9))
          << MethodName(c.m) << " best=" << c.best.name()
          << " other=" << other.name() << " alpha=" << alpha;
    }
  }
}

TEST_P(ComparisonAlphaTest, Corollary3WorstIsComplementOfBest) {
  const double alpha = GetParam();
  const DiscretePareto f = DiscretePareto::PaperParameterization(alpha);
  const int64_t t = 1 << 20;
  const TruncatedDistribution fn(f, t);
  // For T1, best = descending, worst = ascending (its complement) among
  // the named maps.
  const double asc = FastDiscreteCost(fn, t, Method::kT1,
                                      XiMap::Ascending());
  for (const XiMap& xi :
       {XiMap::Descending(), XiMap::RoundRobin(),
        XiMap::ComplementaryRoundRobin(), XiMap::Uniform()}) {
    EXPECT_GE(asc * (1.0 + 1e-9),
              FastDiscreteCost(fn, t, Method::kT1, xi))
        << xi.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, ComparisonAlphaTest,
                         ::testing::Values(1.6, 1.7, 2.1, 2.5, 3.0));

TEST(ComparisonTest, T1StrictlyBetterThanE1InTheGapRegime) {
  // alpha in (4/3, 1.5]: c(T1, xi_D) finite, c(E1, xi_D) infinite.
  const double alpha = 1.45;
  EXPECT_TRUE(
      IsFiniteAsymptoticCost(Method::kT1, XiMap::Descending(), alpha));
  EXPECT_FALSE(
      IsFiniteAsymptoticCost(Method::kE1, XiMap::Descending(), alpha));
}

TEST(ComparisonTest, FourRegimesOfVertexIterator) {
  // Section 4.2: thresholds at 4/3 (T1+D), 1.5 (T2), 2 (T1+A).
  const XiMap d = XiMap::Descending();
  const XiMap a = XiMap::Ascending();
  EXPECT_FALSE(IsFiniteAsymptoticCost(Method::kT1, d, 1.30));
  EXPECT_TRUE(IsFiniteAsymptoticCost(Method::kT1, d, 1.40));
  EXPECT_FALSE(IsFiniteAsymptoticCost(Method::kT2, d, 1.40));
  EXPECT_TRUE(IsFiniteAsymptoticCost(Method::kT2, d, 1.60));
  EXPECT_FALSE(IsFiniteAsymptoticCost(Method::kT1, a, 1.90));
  EXPECT_TRUE(IsFiniteAsymptoticCost(Method::kT1, a, 2.10));
}

}  // namespace
}  // namespace trilist
