#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include "src/graph/builder.h"

namespace trilist {
namespace {

TEST(GraphTest, EmptyGraph) {
  const Graph g = MakeEmpty(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(GraphTest, ZeroNodes) {
  auto r = Graph::FromEdges(0, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_nodes(), 0u);
}

TEST(GraphTest, FromEdgesBuildsSortedCsr) {
  auto r = Graph::FromEdges(4, {{2, 0}, {0, 1}, {3, 0}});
  ASSERT_TRUE(r.ok());
  const Graph& g = *r;
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(1), 1);
  const auto nb = g.Neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(nb[1], 2u);
  EXPECT_EQ(nb[2], 3u);
}

TEST(GraphTest, RejectsSelfLoop) {
  auto r = Graph::FromEdges(3, {{1, 1}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsDuplicateEdge) {
  auto r = Graph::FromEdges(3, {{0, 1}, {1, 0}});
  EXPECT_FALSE(r.ok());
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  auto r = Graph::FromEdges(3, {{0, 3}});
  EXPECT_FALSE(r.ok());
}

TEST(GraphTest, HasEdgeSymmetric) {
  auto g = Graph::FromEdges(4, {{0, 1}, {2, 3}}).ValueOrDie();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 99));
}

TEST(GraphTest, EdgeListCanonical) {
  auto g = Graph::FromEdges(4, {{3, 1}, {0, 2}}).ValueOrDie();
  const auto edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
}

TEST(GraphTest, DegreesVector) {
  const Graph g = MakeStar(5);
  const auto d = g.Degrees();
  EXPECT_EQ(d, (std::vector<int64_t>{4, 1, 1, 1, 1}));
  EXPECT_EQ(g.MaxDegree(), 4);
}

TEST(BuilderTest, FactoriesHaveExpectedShape) {
  EXPECT_EQ(MakeComplete(5).num_edges(), 10u);
  EXPECT_EQ(MakeStar(6).num_edges(), 5u);
  EXPECT_EQ(MakePath(6).num_edges(), 5u);
  EXPECT_EQ(MakeCycle(6).num_edges(), 6u);
  const Graph bow = MakeBowTie(3);
  EXPECT_EQ(bow.num_nodes(), 5u);
  EXPECT_EQ(bow.num_edges(), 6u);  // two triangles sharing node 0
  EXPECT_EQ(bow.Degree(0), 4);
}

TEST(BuilderTest, BuildValidates) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // duplicate in reverse orientation
  auto r = std::move(b).Build();
  EXPECT_FALSE(r.ok());
}

TEST(BuilderTest, CountsEdges) {
  GraphBuilder b(10);
  EXPECT_EQ(b.num_edges(), 0u);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  EXPECT_EQ(b.num_edges(), 2u);
  EXPECT_EQ(b.num_nodes(), 10u);
}

}  // namespace
}  // namespace trilist
