#include "src/algo/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/util/rng.h"

namespace trilist {
namespace {

int64_t ReferenceIntersectionSize(const std::vector<NodeId>& a,
                                  const std::vector<NodeId>& b) {
  const std::set<NodeId> sa(a.begin(), a.end());
  int64_t count = 0;
  std::set<NodeId> seen;
  for (NodeId x : b) {
    if (sa.count(x) > 0 && seen.insert(x).second) ++count;
  }
  return count;
}

TEST(IntersectTest, SmallHandCases) {
  const std::vector<NodeId> a = {1, 3, 5, 7, 9};
  const std::vector<NodeId> b = {2, 3, 4, 7, 10};
  EXPECT_EQ(CountIntersectMerge(a, b), 2);
  EXPECT_EQ(CountIntersectGallop(a, b), 2);
  EXPECT_EQ(CountIntersectAuto(a, b), 2);
}

TEST(IntersectTest, EmptyAndDisjoint) {
  const std::vector<NodeId> a = {1, 2, 3};
  const std::vector<NodeId> empty;
  EXPECT_EQ(CountIntersectMerge(a, empty), 0);
  EXPECT_EQ(CountIntersectGallop(empty, a), 0);
  const std::vector<NodeId> b = {10, 20};
  EXPECT_EQ(CountIntersectAuto(a, b), 0);
}

TEST(IntersectTest, IdenticalLists) {
  const std::vector<NodeId> a = {2, 4, 6, 8};
  EXPECT_EQ(CountIntersectMerge(a, a), 4);
  EXPECT_EQ(CountIntersectGallop(a, a), 4);
}

TEST(IntersectTest, EmitsTheActualElements) {
  const std::vector<NodeId> a = {1, 4, 6, 9};
  const std::vector<NodeId> b = {4, 9, 12};
  std::vector<NodeId> out;
  auto emit = [](NodeId v, void* ctx) {
    static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
  };
  IntersectMerge(a, b, emit, &out);
  EXPECT_EQ(out, (std::vector<NodeId>{4, 9}));
  out.clear();
  IntersectGallop(a, b, emit, &out);
  EXPECT_EQ(out, (std::vector<NodeId>{4, 9}));
}

TEST(IntersectTest, RandomizedAgainstReference) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t la = rng.NextBounded(50);
    const size_t lb = rng.NextBounded(800);
    std::set<NodeId> sa;
    std::set<NodeId> sb;
    while (sa.size() < la) {
      sa.insert(static_cast<NodeId>(rng.NextBounded(1000)));
    }
    while (sb.size() < lb) {
      sb.insert(static_cast<NodeId>(rng.NextBounded(1000)));
    }
    const std::vector<NodeId> a(sa.begin(), sa.end());
    const std::vector<NodeId> b(sb.begin(), sb.end());
    const int64_t expected = ReferenceIntersectionSize(a, b);
    ASSERT_EQ(CountIntersectMerge(a, b), expected) << trial;
    ASSERT_EQ(CountIntersectGallop(a, b), expected) << trial;
    ASSERT_EQ(CountIntersectAuto(a, b), expected) << trial;
  }
}

TEST(IntersectTest, GallopCheaperOnExtremeAsymmetry) {
  // |A| = 4 against |B| = 100000: gallop must use far fewer comparisons.
  Rng rng(13);
  std::vector<NodeId> big(100000);
  NodeId cur = 0;
  for (auto& v : big) {
    cur += 1 + static_cast<NodeId>(rng.NextBounded(5));
    v = cur;
  }
  const std::vector<NodeId> small = {big[10], big[5000], big[70000],
                                     big[99999]};
  int64_t merge_cmp = IntersectMerge(small, big, nullptr, nullptr);
  int64_t gallop_cmp = IntersectGallop(small, big, nullptr, nullptr);
  EXPECT_GT(merge_cmp, 50000);
  EXPECT_LT(gallop_cmp, 300);
}

TEST(IntersectTest, AutoEmptySpansPerformNoComparisons) {
  const std::vector<NodeId> a = {1, 2, 3};
  const std::vector<NodeId> empty;
  std::vector<NodeId> out;
  auto emit = [](NodeId v, void* ctx) {
    static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
  };
  EXPECT_EQ(IntersectAuto(empty, empty, emit, &out), 0);
  EXPECT_EQ(IntersectAuto(a, empty, emit, &out), 0);
  EXPECT_EQ(IntersectAuto(empty, a, emit, &out), 0);
  EXPECT_TRUE(out.empty());
}

/// Builds a sorted list [0, len) used by the threshold tests below. The
/// probe list {big values} makes merge scan the whole long list, so the
/// merge and gallop comparison counts differ and identify which kernel
/// Auto dispatched to.
std::vector<NodeId> Iota(size_t len) {
  std::vector<NodeId> v(len);
  for (size_t i = 0; i < len; ++i) v[i] = static_cast<NodeId>(i);
  return v;
}

TEST(IntersectTest, AutoDispatchesMergeAtExactly32xRatio) {
  const std::vector<NodeId> small = {1000000, 1000001};
  const std::vector<NodeId> big = Iota(32 * small.size());  // exactly 32x
  const int64_t merge_cmp = IntersectMerge(small, big, nullptr, nullptr);
  const int64_t gallop_cmp = IntersectGallop(small, big, nullptr, nullptr);
  ASSERT_NE(merge_cmp, gallop_cmp) << "test needs distinguishable kernels";
  EXPECT_EQ(IntersectAuto(small, big, nullptr, nullptr), merge_cmp);
  // Argument order must not matter.
  EXPECT_EQ(IntersectAuto(big, small, nullptr, nullptr), merge_cmp);
}

TEST(IntersectTest, AutoDispatchesGallopJustAbove32xRatio) {
  const std::vector<NodeId> small = {1000000, 1000001};
  const std::vector<NodeId> big = Iota(32 * small.size() + 1);  // 32.5x
  const int64_t merge_cmp = IntersectMerge(small, big, nullptr, nullptr);
  const int64_t gallop_cmp = IntersectGallop(small, big, nullptr, nullptr);
  ASSERT_NE(merge_cmp, gallop_cmp) << "test needs distinguishable kernels";
  EXPECT_EQ(IntersectAuto(small, big, nullptr, nullptr), gallop_cmp);
  EXPECT_EQ(IntersectAuto(big, small, nullptr, nullptr), gallop_cmp);
}

TEST(IntersectTest, GallopMonotoneCursorHandlesDuplicateFreeRuns) {
  // Sequential keys: the monotone cursor must not skip matches.
  std::vector<NodeId> a(100);
  std::vector<NodeId> b(100);
  for (NodeId i = 0; i < 100; ++i) {
    a[i] = i;
    b[i] = i;
  }
  EXPECT_EQ(CountIntersectGallop(a, b), 100);
}

}  // namespace
}  // namespace trilist
