#include "src/algo/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/algo/simd/intersect_simd.h"
#include "src/util/cpu_features.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

int64_t ReferenceIntersectionSize(const std::vector<NodeId>& a,
                                  const std::vector<NodeId>& b) {
  const std::set<NodeId> sa(a.begin(), a.end());
  int64_t count = 0;
  std::set<NodeId> seen;
  for (NodeId x : b) {
    if (sa.count(x) > 0 && seen.insert(x).second) ++count;
  }
  return count;
}

TEST(IntersectTest, SmallHandCases) {
  const std::vector<NodeId> a = {1, 3, 5, 7, 9};
  const std::vector<NodeId> b = {2, 3, 4, 7, 10};
  EXPECT_EQ(CountIntersectMerge(a, b), 2);
  EXPECT_EQ(CountIntersectGallop(a, b), 2);
  EXPECT_EQ(CountIntersectAuto(a, b), 2);
}

TEST(IntersectTest, EmptyAndDisjoint) {
  const std::vector<NodeId> a = {1, 2, 3};
  const std::vector<NodeId> empty;
  EXPECT_EQ(CountIntersectMerge(a, empty), 0);
  EXPECT_EQ(CountIntersectGallop(empty, a), 0);
  const std::vector<NodeId> b = {10, 20};
  EXPECT_EQ(CountIntersectAuto(a, b), 0);
}

TEST(IntersectTest, IdenticalLists) {
  const std::vector<NodeId> a = {2, 4, 6, 8};
  EXPECT_EQ(CountIntersectMerge(a, a), 4);
  EXPECT_EQ(CountIntersectGallop(a, a), 4);
}

TEST(IntersectTest, EmitsTheActualElements) {
  const std::vector<NodeId> a = {1, 4, 6, 9};
  const std::vector<NodeId> b = {4, 9, 12};
  std::vector<NodeId> out;
  auto emit = [](NodeId v, void* ctx) {
    static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
  };
  IntersectMerge(a, b, emit, &out);
  EXPECT_EQ(out, (std::vector<NodeId>{4, 9}));
  out.clear();
  IntersectGallop(a, b, emit, &out);
  EXPECT_EQ(out, (std::vector<NodeId>{4, 9}));
}

TEST(IntersectTest, RandomizedAgainstReference) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t la = rng.NextBounded(50);
    const size_t lb = rng.NextBounded(800);
    std::set<NodeId> sa;
    std::set<NodeId> sb;
    while (sa.size() < la) {
      sa.insert(static_cast<NodeId>(rng.NextBounded(1000)));
    }
    while (sb.size() < lb) {
      sb.insert(static_cast<NodeId>(rng.NextBounded(1000)));
    }
    const std::vector<NodeId> a(sa.begin(), sa.end());
    const std::vector<NodeId> b(sb.begin(), sb.end());
    const int64_t expected = ReferenceIntersectionSize(a, b);
    ASSERT_EQ(CountIntersectMerge(a, b), expected) << trial;
    ASSERT_EQ(CountIntersectGallop(a, b), expected) << trial;
    ASSERT_EQ(CountIntersectAuto(a, b), expected) << trial;
  }
}

TEST(IntersectTest, GallopCheaperOnExtremeAsymmetry) {
  // |A| = 4 against |B| = 100000: gallop must use far fewer comparisons.
  Rng rng(13);
  std::vector<NodeId> big(100000);
  NodeId cur = 0;
  for (auto& v : big) {
    cur += 1 + static_cast<NodeId>(rng.NextBounded(5));
    v = cur;
  }
  const std::vector<NodeId> small = {big[10], big[5000], big[70000],
                                     big[99999]};
  int64_t merge_cmp = IntersectMerge(small, big, nullptr, nullptr);
  int64_t gallop_cmp = IntersectGallop(small, big, nullptr, nullptr);
  EXPECT_GT(merge_cmp, 50000);
  EXPECT_LT(gallop_cmp, 300);
}

TEST(IntersectTest, AutoEmptySpansPerformNoComparisons) {
  const std::vector<NodeId> a = {1, 2, 3};
  const std::vector<NodeId> empty;
  std::vector<NodeId> out;
  auto emit = [](NodeId v, void* ctx) {
    static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
  };
  EXPECT_EQ(IntersectAuto(empty, empty, emit, &out), 0);
  EXPECT_EQ(IntersectAuto(a, empty, emit, &out), 0);
  EXPECT_EQ(IntersectAuto(empty, a, emit, &out), 0);
  EXPECT_TRUE(out.empty());
}

/// Builds a sorted list [0, len) used by the threshold tests below. The
/// probe list {big values} makes merge scan the whole long list, so the
/// merge and gallop comparison counts differ and identify which kernel
/// Auto dispatched to.
std::vector<NodeId> Iota(size_t len) {
  std::vector<NodeId> v(len);
  for (size_t i = 0; i < len; ++i) v[i] = static_cast<NodeId>(i);
  return v;
}

TEST(IntersectTest, AutoDispatchesMergeAtExactly32xRatio) {
  const std::vector<NodeId> small = {1000000, 1000001};
  const std::vector<NodeId> big = Iota(32 * small.size());  // exactly 32x
  const int64_t merge_cmp = IntersectMerge(small, big, nullptr, nullptr);
  const int64_t gallop_cmp = IntersectGallop(small, big, nullptr, nullptr);
  ASSERT_NE(merge_cmp, gallop_cmp) << "test needs distinguishable kernels";
  EXPECT_EQ(IntersectAuto(small, big, nullptr, nullptr), merge_cmp);
  // Argument order must not matter.
  EXPECT_EQ(IntersectAuto(big, small, nullptr, nullptr), merge_cmp);
}

TEST(IntersectTest, AutoDispatchesGallopJustAbove32xRatio) {
  const std::vector<NodeId> small = {1000000, 1000001};
  const std::vector<NodeId> big = Iota(32 * small.size() + 1);  // 32.5x
  const int64_t merge_cmp = IntersectMerge(small, big, nullptr, nullptr);
  const int64_t gallop_cmp = IntersectGallop(small, big, nullptr, nullptr);
  ASSERT_NE(merge_cmp, gallop_cmp) << "test needs distinguishable kernels";
  EXPECT_EQ(IntersectAuto(small, big, nullptr, nullptr), gallop_cmp);
  EXPECT_EQ(IntersectAuto(big, small, nullptr, nullptr), gallop_cmp);
}

TEST(IntersectTest, GallopMonotoneCursorHandlesDuplicateFreeRuns) {
  // Sequential keys: the monotone cursor must not skip matches.
  std::vector<NodeId> a(100);
  std::vector<NodeId> b(100);
  for (NodeId i = 0; i < 100; ++i) {
    a[i] = i;
    b[i] = i;
  }
  EXPECT_EQ(CountIntersectGallop(a, b), 100);
}

// ---------------------------------------------------------------------------
// Devirtualized templates vs the C-style shims (the shims must be pure
// forwarders: same comparisons, same emissions).

TEST(IntersectTest, ShimsMatchTemplates) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<NodeId> sa;
    std::set<NodeId> sb;
    while (sa.size() < rng.NextBounded(120)) {
      sa.insert(static_cast<NodeId>(rng.NextBounded(400)));
    }
    while (sb.size() < rng.NextBounded(120)) {
      sb.insert(static_cast<NodeId>(rng.NextBounded(400)));
    }
    const std::vector<NodeId> a(sa.begin(), sa.end());
    const std::vector<NodeId> b(sb.begin(), sb.end());
    std::vector<NodeId> shim_out;
    auto emit = [](NodeId v, void* ctx) {
      static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
    };
    std::vector<NodeId> tmpl_out;
    auto collect = [&tmpl_out](NodeId v) { tmpl_out.push_back(v); };

    ASSERT_EQ(IntersectMerge(a, b, emit, &shim_out),
              IntersectMergeT(a, b, collect));
    ASSERT_EQ(shim_out, tmpl_out);
    shim_out.clear();
    tmpl_out.clear();
    ASSERT_EQ(IntersectGallop(a, b, emit, &shim_out),
              IntersectGallopT(a, b, collect));
    ASSERT_EQ(shim_out, tmpl_out);
    shim_out.clear();
    tmpl_out.clear();
    ASSERT_EQ(IntersectAuto(a, b, emit, &shim_out),
              IntersectAutoT(a, b, collect));
    ASSERT_EQ(shim_out, tmpl_out);
  }
}

// ---------------------------------------------------------------------------
// SIMD block merge.

std::vector<NodeId> MergeEmitted(const std::vector<NodeId>& a,
                                 const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  IntersectMergeT(a, b, [&out](NodeId v) { out.push_back(v); });
  return out;
}

std::vector<NodeId> SimdEmitted(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  auto emit = [](NodeId v, void* ctx) {
    static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
  };
  IntersectSimd(a, b, emit, &out);
  return out;
}

/// Strictly increasing list of `len` values with the given stride pattern.
std::vector<NodeId> Strided(size_t len, NodeId start, unsigned seed) {
  Rng rng(seed);
  std::vector<NodeId> v(len);
  NodeId cur = start;
  for (auto& x : v) {
    cur += 1 + static_cast<NodeId>(rng.NextBounded(3));
    x = cur;
  }
  return v;
}

TEST(SimdIntersectTest, AdversarialSpans) {
  const std::vector<NodeId> empty;
  const std::vector<NodeId> one = {5};
  const std::vector<NodeId> ident = Strided(100, 0, 3);
  const std::vector<NodeId> disjoint_lo = Iota(40);
  std::vector<NodeId> disjoint_hi(40);
  for (size_t i = 0; i < 40; ++i) {
    disjoint_hi[i] = static_cast<NodeId>(1000 + i);
  }
  // Values straddling 64-aligned label boundaries (the bitmap word size;
  // also exercises unaligned vector loads).
  std::vector<NodeId> word_edges;
  for (NodeId w = 0; w < 40; ++w) {
    word_edges.push_back(w * 64 - (w % 2));
    word_edges.push_back(w * 64 + 1);
  }
  std::sort(word_edges.begin(), word_edges.end());
  word_edges.erase(std::unique(word_edges.begin(), word_edges.end()),
                   word_edges.end());
  // 32x-ratio boundary shapes (Auto's threshold; also block-vs-tail).
  const std::vector<NodeId> small2 = {64, 640};
  const std::vector<NodeId> big64 = Iota(64 * small2.size());

  const std::vector<const std::vector<NodeId>*> cases = {
      &empty, &one,         &ident, &disjoint_lo,
      &disjoint_hi, &word_edges,  &small2, &big64};
  for (const auto* pa : cases) {
    for (const auto* pb : cases) {
      const auto expected = MergeEmitted(*pa, *pb);
      EXPECT_EQ(SimdEmitted(*pa, *pb), expected);
      EXPECT_EQ(CountIntersectSimd(*pa, *pb),
                static_cast<int64_t>(expected.size()));
    }
  }
}

TEST(SimdIntersectTest, DuplicatesFallBackToScalarSemantics) {
  // Adjacent duplicates: the block kernels require strict sortedness, so
  // the public kernel must take the scalar path and match Merge exactly —
  // including the comparison count, which only the scalar loop produces
  // for non-strict inputs.
  const std::vector<NodeId> a = {1, 2, 2, 3, 5, 5, 5, 9};
  const std::vector<NodeId> b = {2, 2, 4, 5, 9, 9};
  std::vector<NodeId> merge_out;
  const int64_t merge_cmp =
      IntersectMergeT(a, b, [&merge_out](NodeId v) { merge_out.push_back(v); });
  std::vector<NodeId> simd_out;
  auto emit = [](NodeId v, void* ctx) {
    static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
  };
  EXPECT_EQ(IntersectSimd(a, b, emit, &simd_out), merge_cmp);
  EXPECT_EQ(simd_out, merge_out);
}

TEST(SimdIntersectTest, RandomizedDifferentialAllKernels) {
  Rng rng(29);
  for (int trial = 0; trial < 300; ++trial) {
    std::set<NodeId> sa;
    std::set<NodeId> sb;
    const size_t la = rng.NextBounded(trial % 3 == 0 ? 40 : 600);
    const size_t lb = rng.NextBounded(600);
    while (sa.size() < la) {
      sa.insert(static_cast<NodeId>(rng.NextBounded(2000)));
    }
    while (sb.size() < lb) {
      sb.insert(static_cast<NodeId>(rng.NextBounded(2000)));
    }
    const std::vector<NodeId> a(sa.begin(), sa.end());
    const std::vector<NodeId> b(sb.begin(), sb.end());
    const auto expected = MergeEmitted(a, b);
    const auto n = static_cast<int64_t>(expected.size());
    ASSERT_EQ(SimdEmitted(a, b), expected) << trial;
    ASSERT_EQ(CountIntersectSimd(a, b), n) << trial;
    ASSERT_EQ(CountIntersectGallop(a, b), n) << trial;
    ASSERT_EQ(CountIntersectAuto(a, b), n) << trial;
    // simd reports the scalar-equivalent comparison count.
    std::vector<NodeId> out;
    auto emit = [](NodeId v, void* ctx) {
      static_cast<std::vector<NodeId>*>(ctx)->push_back(v);
    };
    const int64_t merge_cmp = IntersectMerge(a, b, nullptr, nullptr);
    ASSERT_EQ(IntersectSimd(a, b, emit, &out), merge_cmp) << trial;
  }
}

TEST(SimdIntersectTest, ScalarMergeComparisonsClosedForm) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<NodeId> sa;
    std::set<NodeId> sb;
    while (sa.size() < rng.NextBounded(200)) {
      sa.insert(static_cast<NodeId>(rng.NextBounded(500)));
    }
    while (sb.size() < rng.NextBounded(200)) {
      sb.insert(static_cast<NodeId>(rng.NextBounded(500)));
    }
    const std::vector<NodeId> a(sa.begin(), sa.end());
    const std::vector<NodeId> b(sb.begin(), sb.end());
    int64_t matches = 0;
    const int64_t cmp = IntersectMergeT(a, b, [&matches](NodeId) { ++matches; });
    ASSERT_EQ(simd::ScalarMergeComparisons(a, b,
                                           static_cast<size_t>(matches)),
              cmp)
        << trial;
    ASSERT_EQ(simd::ScalarMergeComparisons(b, a,
                                           static_cast<size_t>(matches)),
              cmp)
        << trial;
  }
}

TEST(SimdIntersectTest, EveryBlockKernelLevelAgrees) {
  // Cross-check all ISA levels the host supports against the scalar
  // block merge; levels above the detected one clamp down (no SIGILL).
  Rng rng(37);
  for (int trial = 0; trial < 60; ++trial) {
    const auto a = Strided(16 + rng.NextBounded(400), 0,
                           1000 + static_cast<unsigned>(trial));
    const auto b = Strided(16 + rng.NextBounded(400), rng.NextBounded(20),
                           2000 + static_cast<unsigned>(trial));
    std::vector<NodeId> ref(std::min(a.size(), b.size()));
    const size_t m0 = simd::BlockMergeIntersectAt(SimdLevel::kScalar, a, b,
                                                  ref.data());
    for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
      std::vector<NodeId> out(ref.size());
      const size_t m = simd::BlockMergeIntersectAt(level, a, b, out.data());
      ASSERT_EQ(m, m0) << trial;
      ASSERT_TRUE(std::equal(ref.begin(), ref.begin() + m0, out.begin()))
          << trial;
    }
  }
}

TEST(SimdIntersectTest, ForcedScalarLevelStillCorrect) {
  SetActiveSimdLevelForTest(SimdLevel::kScalar);
  const auto a = Strided(300, 0, 41);
  const auto b = Strided(300, 5, 43);
  EXPECT_EQ(SimdEmitted(a, b), MergeEmitted(a, b));
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // Restore runtime dispatch for other tests in this process.
  SetActiveSimdLevelForTest(DetectedSimdLevel());
}

TEST(CpuFeaturesTest, ResolveSimdLevelRules) {
  // Force-scalar wins over everything; any non-empty value except "0".
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, "1", nullptr),
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, "yes", "avx512"),
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, "0", nullptr),
            SimdLevel::kAvx512);
  // TRILIST_SIMD caps the level but can never raise it past detection.
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, nullptr, "avx2"),
            SimdLevel::kAvx2);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx2, nullptr, "avx512"),
            SimdLevel::kAvx2);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar, nullptr, "avx2"),
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx2, nullptr, "scalar"),
            SimdLevel::kScalar);
  // Unrecognized request: keep the detected level.
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx2, nullptr, "bogus"),
            SimdLevel::kAvx2);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx512), "avx512");
}

}  // namespace
}  // namespace trilist
