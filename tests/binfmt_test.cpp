#include "src/graph/binfmt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/graph/io.h"
#include "src/graph/mmap_file.h"
#include "src/order/pipeline.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Graph SampleGraph() {
  Rng rng(17);
  return GenerateGnp(400, 0.03, &rng);
}

/// Whole-file read/write helpers for the corruption tests.
std::vector<unsigned char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void Spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
T ReadAt(const std::vector<unsigned char>& bytes, size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

template <typename T>
void WriteAt(std::vector<unsigned char>* bytes, size_t offset, T value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

// On-disk layout constants mirrored from binfmt.cpp (pinned by its
// static_asserts); the corruption tests patch files at these offsets.
constexpr size_t kHeaderSize = 40;
constexpr size_t kEntrySize = 32;
constexpr size_t kHeaderTableCrcOff = 32;
constexpr size_t kEntryOffsetOff = 8;
constexpr size_t kEntryLengthOff = 16;
constexpr size_t kEntryCrcOff = 24;

/// Recomputes a section's CRC and the table CRC after a payload patch, so
/// corruption reaches the structural validator instead of tripping the
/// checksum first.
void FixUpCrcs(std::vector<unsigned char>* bytes, size_t section_index) {
  const size_t entry = kHeaderSize + section_index * kEntrySize;
  const auto offset = ReadAt<uint64_t>(*bytes, entry + kEntryOffsetOff);
  const auto length = ReadAt<uint64_t>(*bytes, entry + kEntryLengthOff);
  WriteAt<uint32_t>(bytes, entry + kEntryCrcOff,
                    Crc32Update(0, bytes->data() + offset, length));
  const auto count = ReadAt<uint32_t>(*bytes, 12);
  WriteAt<uint32_t>(bytes, kHeaderTableCrcOff,
                    Crc32Update(0, bytes->data() + kHeaderSize,
                                count * kEntrySize));
}

TEST(TlgRoundTripTest, PreservesGraphAndDegrees) {
  const Graph g = SampleGraph();
  const std::string path = TempPath("roundtrip.tlg");
  ASSERT_TRUE(WriteTlgFile(g, path).ok());
  auto t = TlgFile::Open(path);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->graph().num_nodes(), g.num_nodes());
  EXPECT_EQ(t->graph().num_edges(), g.num_edges());
  EXPECT_EQ(t->graph().EdgeList(), g.EdgeList());
  const auto degrees = g.Degrees();
  ASSERT_EQ(t->degrees().size(), degrees.size());
  EXPECT_TRUE(std::equal(t->degrees().begin(), t->degrees().end(),
                         degrees.begin()));
  EXPECT_EQ(t->version(), 1u);
  EXPECT_TRUE(LooksLikeTlgFile(path));
  std::remove(path.c_str());
}

TEST(TlgRoundTripTest, EmptyAndEdgeCaseGraphs) {
  for (const Graph& g :
       {Graph::FromEdges(0, {}).ValueOrDie(),
        Graph::FromEdges(5, {}).ValueOrDie(), MakeStar(7),
        MakeComplete(4)}) {
    const std::string path = TempPath("edgecase.tlg");
    ASSERT_TRUE(WriteTlgFile(g, path).ok());
    auto t = TlgFile::Open(path);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t->graph().num_nodes(), g.num_nodes());
    EXPECT_EQ(t->graph().EdgeList(), g.EdgeList());
    std::remove(path.c_str());
  }
}

TEST(TlgRoundTripTest, GraphViewOutlivesContainer) {
  const Graph g = SampleGraph();
  const std::string path = TempPath("outlive.tlg");
  ASSERT_TRUE(WriteTlgFile(g, path).ok());
  Graph view;
  {
    auto t = TlgFile::Open(path);
    ASSERT_TRUE(t.ok());
    view = t->graph();  // copy shares the pinned mapping
  }
  EXPECT_EQ(view.EdgeList(), g.EdgeList());
  std::remove(path.c_str());
}

TEST(TlgRoundTripTest, ReadFallbackMatchesMmap) {
  const Graph g = SampleGraph();
  const std::string path = TempPath("fallback.tlg");
  ASSERT_TRUE(WriteTlgFile(g, path).ok());
  TlgLoadOptions opts;
  opts.backing = MmapFile::Backing::kRead;
  auto t = TlgFile::Open(path, opts);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->mmap_backed());
  EXPECT_EQ(t->graph().EdgeList(), g.EdgeList());
  std::remove(path.c_str());
}

TEST(TlgOrientationCacheTest, BitIdenticalToFreshPipeline) {
  const Graph g = SampleGraph();
  const std::string path = TempPath("orient.tlg");
  TlgWriteOptions wopts;
  wopts.orientations = {
      OrientSpec{PermutationKind::kDescending, 0},
      OrientSpec{PermutationKind::kRoundRobin, 0},
      OrientSpec{PermutationKind::kUniform, 42},
      OrientSpec{PermutationKind::kDegenerate, 0},
  };
  ASSERT_TRUE(WriteTlgFile(g, path, wopts).ok());
  auto t = TlgFile::Open(path);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->orientation_specs().size(), wopts.orientations.size());
  for (const OrientSpec& spec : wopts.orientations) {
    const OrientedGraph* cached = t->FindOrientation(spec);
    ASSERT_NE(cached, nullptr);
    const OrientedGraph fresh = OrientWithSpec(t->graph(), spec);
    const auto eq = [](auto a, auto b) {
      return std::equal(a.begin(), a.end(), b.begin(), b.end());
    };
    EXPECT_TRUE(eq(cached->RawOutOffsets(), fresh.RawOutOffsets()));
    EXPECT_TRUE(eq(cached->RawOutNeighbors(), fresh.RawOutNeighbors()));
    EXPECT_TRUE(eq(cached->RawInOffsets(), fresh.RawInOffsets()));
    EXPECT_TRUE(eq(cached->RawInNeighbors(), fresh.RawInNeighbors()));
    EXPECT_TRUE(eq(cached->original_of(), fresh.original_of()));
  }
  // A different uniform seed is a different orientation: cache miss.
  EXPECT_EQ(t->FindOrientation(OrientSpec{PermutationKind::kUniform, 43}),
            nullptr);
  // Seeds are irrelevant for deterministic families: cache hit.
  EXPECT_NE(
      t->FindOrientation(OrientSpec{PermutationKind::kDescending, 999}),
      nullptr);
  std::remove(path.c_str());
}

TEST(TlgEngineEquivalenceTest, AllFundamentalMethodsSerialAndParallel) {
  // The acceptance experiment: text edge list -> .tlg -> mmap load; all
  // four fundamental methods must report identical triangle counts AND
  // identical operation counts on both loading paths, serial and
  // parallel.
  const Graph g = SampleGraph();
  const std::string text_path = TempPath("equiv.txt");
  const std::string tlg_path = TempPath("equiv.tlg");
  ASSERT_TRUE(WriteEdgeListFile(g, text_path).ok());
  const OrientSpec spec{PermutationKind::kDescending, 0};
  TlgWriteOptions wopts;
  wopts.orientations = {spec};
  ASSERT_TRUE(WriteTlgFile(g, tlg_path, wopts).ok());

  auto text_graph = ReadEdgeListFile(text_path);
  ASSERT_TRUE(text_graph.ok());
  auto tlg = TlgFile::Open(tlg_path);
  ASSERT_TRUE(tlg.ok());
  const OrientedGraph og_text = OrientWithSpec(*text_graph, spec);
  const OrientedGraph* og_tlg = tlg->FindOrientation(spec);
  ASSERT_NE(og_tlg, nullptr);

  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    for (int threads : {1, 4}) {
      ExecPolicy exec;
      exec.threads = threads;
      CountingSink s_text;
      CountingSink s_tlg;
      const OpCounts ops_text = RunMethod(m, og_text, &s_text, exec);
      const OpCounts ops_tlg = RunMethod(m, *og_tlg, &s_tlg, exec);
      EXPECT_EQ(s_text.count(), s_tlg.count())
          << MethodName(m) << " threads=" << threads;
      EXPECT_EQ(ops_text.PaperCost(), ops_tlg.PaperCost())
          << MethodName(m) << " threads=" << threads;
    }
  }
  std::remove(text_path.c_str());
  std::remove(tlg_path.c_str());
}

class TlgFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("fault.tlg");
    TlgWriteOptions wopts;
    wopts.orientations = {OrientSpec{PermutationKind::kDescending, 0}};
    ASSERT_TRUE(WriteTlgFile(SampleGraph(), path_, wopts).ok());
    bytes_ = Slurp(path_);
    ASSERT_GT(bytes_.size(), kHeaderSize);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes the (patched) image and asserts Open fails cleanly with the
  /// given substring in the error message.
  void ExpectOpenFails(const std::string& what) {
    Spit(path_, bytes_);
    auto t = TlgFile::Open(path_);
    ASSERT_FALSE(t.ok()) << "expected failure: " << what;
    EXPECT_NE(t.status().message().find(what), std::string::npos)
        << "got: " << t.status().ToString();
  }

  std::string path_;
  std::vector<unsigned char> bytes_;
};

TEST_F(TlgFaultInjectionTest, ZeroLengthFile) {
  bytes_.clear();
  ExpectOpenFails("shorter than the 40-byte header");
}

TEST_F(TlgFaultInjectionTest, TruncatedHeader) {
  bytes_.resize(kHeaderSize / 2);
  ExpectOpenFails("shorter than the 40-byte header");
}

TEST_F(TlgFaultInjectionTest, WrongMagic) {
  bytes_[0] ^= 0xFF;
  ExpectOpenFails("bad magic");
}

TEST_F(TlgFaultInjectionTest, UnsupportedVersion) {
  WriteAt<uint32_t>(&bytes_, 8, 99);
  ExpectOpenFails("unsupported .tlg version");
}

TEST_F(TlgFaultInjectionTest, TruncatedSectionTable) {
  bytes_.resize(kHeaderSize + kEntrySize - 4);
  ExpectOpenFails("section table extends past end of file");
}

TEST_F(TlgFaultInjectionTest, TruncatedPayload) {
  bytes_.resize(bytes_.size() * 3 / 5);
  ExpectOpenFails("extends past end of file");
}

TEST_F(TlgFaultInjectionTest, CorruptedSectionTableCrc) {
  bytes_[kHeaderSize + 4] ^= 0x01;  // flip a bit inside the table
  ExpectOpenFails("section table CRC mismatch");
}

TEST_F(TlgFaultInjectionTest, CorruptedPayloadCrc) {
  // Flip a byte in the last section's payload without fixing its CRC.
  const size_t entry = kHeaderSize;
  const auto offset = ReadAt<uint64_t>(bytes_, entry + kEntryOffsetOff);
  bytes_[offset + 3] ^= 0xFF;
  ExpectOpenFails("CRC mismatch");
}

TEST_F(TlgFaultInjectionTest, OversizedSectionOffset) {
  const size_t entry = kHeaderSize + kEntrySize;  // csr_neighbors
  WriteAt<uint64_t>(&bytes_, entry + kEntryOffsetOff,
                    uint64_t{1} << 60);  // aligned but far out of range
  const auto count = ReadAt<uint32_t>(bytes_, 12);
  WriteAt<uint32_t>(&bytes_, kHeaderTableCrcOff,
                    Crc32Update(0, bytes_.data() + kHeaderSize,
                                count * kEntrySize));
  ExpectOpenFails("section extends past end of file");
}

TEST_F(TlgFaultInjectionTest, ForgedHugeEdgeCountRejectedBeforeLengthMath) {
  // num_edges = 2^61 makes `2 * m * sizeof(NodeId)` wrap to 0 mod 2^64.
  // Paired with a zero-length csr_neighbors section and recomputed CRCs
  // (checksums are attacker-forgeable), every length and checksum test
  // would pass and the loader would build a ~2^62-element view over an
  // empty payload. The impossible count must be rejected up front.
  WriteAt<uint64_t>(&bytes_, 24, uint64_t{1} << 61);  // header num_edges
  const size_t entry = kHeaderSize + kEntrySize;  // csr_neighbors
  WriteAt<uint64_t>(&bytes_, entry + kEntryLengthOff, uint64_t{0});
  WriteAt<uint32_t>(&bytes_, entry + kEntryCrcOff,
                    Crc32Update(0, bytes_.data(), 0));
  const auto count = ReadAt<uint32_t>(bytes_, 12);
  WriteAt<uint32_t>(&bytes_, kHeaderTableCrcOff,
                    Crc32Update(0, bytes_.data() + kHeaderSize,
                                count * kEntrySize));
  ExpectOpenFails("edge count impossible for file size");
}

TEST_F(TlgFaultInjectionTest, ForgedHugeNodeCountRejectedBeforeLengthMath) {
  // Within the 32-bit ID space but needing a 16 GiB offsets section —
  // impossible for this file, and rejected before any length arithmetic.
  WriteAt<uint64_t>(&bytes_, 16, uint64_t{1} << 31);  // header num_nodes
  ExpectOpenFails("node count impossible for file size");
}

TEST_F(TlgFaultInjectionTest, MisalignedSectionOffset) {
  const size_t entry = kHeaderSize + kEntrySize;
  const auto offset = ReadAt<uint64_t>(bytes_, entry + kEntryOffsetOff);
  WriteAt<uint64_t>(&bytes_, entry + kEntryOffsetOff, offset + 4);
  const auto count = ReadAt<uint32_t>(bytes_, 12);
  WriteAt<uint32_t>(&bytes_, kHeaderTableCrcOff,
                    Crc32Update(0, bytes_.data() + kHeaderSize,
                                count * kEntrySize));
  ExpectOpenFails("not 8-byte aligned");
}

TEST_F(TlgFaultInjectionTest, NeighborOutOfRangeSurvivesCrcFixup) {
  // Patch a neighbor ID to garbage AND repair both CRCs: the structural
  // validator, not the checksum, must catch it.
  const size_t entry = kHeaderSize + kEntrySize;  // csr_neighbors
  const auto offset = ReadAt<uint64_t>(bytes_, entry + kEntryOffsetOff);
  WriteAt<uint32_t>(&bytes_, offset, 0xFFFFFFF0u);
  FixUpCrcs(&bytes_, 1);
  ExpectOpenFails("neighbor out of range");
}

TEST(TlgMiscTest, MissingFileAndNonTlgFile) {
  EXPECT_FALSE(TlgFile::Open("/nonexistent/missing.tlg").ok());
  EXPECT_FALSE(LooksLikeTlgFile("/nonexistent/missing.tlg"));
  const std::string path = TempPath("not_a_tlg.txt");
  std::ofstream(path) << "0 1\n";
  EXPECT_FALSE(LooksLikeTlgFile(path));
  EXPECT_FALSE(TlgFile::Open(path).ok());
  std::remove(path.c_str());
}

TEST(MmapFileTest, MapsAndFallsBackIdentically) {
  const std::string path = TempPath("mmap_probe.bin");
  std::ofstream(path, std::ios::binary) << "hello mmap world";
  auto mapped = MmapFile::Open(path, MmapFile::Backing::kMmap);
  auto read = MmapFile::Open(path, MmapFile::Backing::kRead);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(mapped->is_mapped());
  EXPECT_FALSE(read->is_mapped());
  ASSERT_EQ(mapped->size(), read->size());
  EXPECT_EQ(std::memcmp(mapped->bytes().data(), read->bytes().data(),
                        read->size()),
            0);
  std::remove(path.c_str());
  EXPECT_FALSE(MmapFile::Open("/nonexistent/nope").ok());
  EXPECT_FALSE(MmapFile::Open("/tmp").ok());  // directories rejected
}

}  // namespace
}  // namespace trilist
