#include "src/algo/cost.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/algo/registry.h"
#include "src/algo/triangle_sink.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/erdos_renyi.h"
#include "src/gen/residual_generator.h"
#include "src/graph/builder.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

Graph HeavyTailedGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  const DiscretePareto base(1.5, 6.0);
  const TruncatedDistribution fn(base, 25);
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  MakeGraphic(&degrees);
  ResidualGenOptions options;
  options.strict = false;
  return GenerateExactDegree(degrees, &rng, nullptr, options).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Metadata tables.
// ---------------------------------------------------------------------------

TEST(MethodMetadataTest, FamiliesAndNames) {
  EXPECT_EQ(MethodFamily(Method::kT3), Family::kVertexIterator);
  EXPECT_EQ(MethodFamily(Method::kE5), Family::kScanningEdgeIterator);
  EXPECT_EQ(MethodFamily(Method::kL2), Family::kLookupEdgeIterator);
  EXPECT_STREQ(MethodName(Method::kE4), "E4");
  EXPECT_EQ(AllMethods().size(), 18u);
  EXPECT_EQ(FundamentalMethods().size(), 4u);
}

TEST(MethodMetadataTest, Table1LocalRemoteClasses) {
  // Table 1 of the paper, verbatim.
  using C = CostClass;
  const std::pair<Method, std::pair<C, C>> kTable1[] = {
      {Method::kE1, {C::kT1, C::kT2}}, {Method::kE2, {C::kT2, C::kT1}},
      {Method::kE3, {C::kT3, C::kT2}}, {Method::kE4, {C::kT1, C::kT3}},
      {Method::kE5, {C::kT2, C::kT3}}, {Method::kE6, {C::kT3, C::kT1}},
  };
  for (const auto& [m, classes] : kTable1) {
    EXPECT_EQ(LocalCostClass(m), classes.first) << MethodName(m);
    EXPECT_EQ(RemoteCostClass(m), classes.second) << MethodName(m);
  }
}

TEST(MethodMetadataTest, Table2LookupClasses) {
  using C = CostClass;
  const std::pair<Method, C> kTable2[] = {
      {Method::kL1, C::kT2}, {Method::kL2, C::kT1}, {Method::kL3, C::kT2},
      {Method::kL4, C::kT3}, {Method::kL5, C::kT3}, {Method::kL6, C::kT1},
  };
  for (const auto& [m, c] : kTable2) {
    EXPECT_EQ(LocalCostClass(m), c) << MethodName(m);
  }
}

TEST(MethodMetadataTest, BinarySearchMethods) {
  EXPECT_TRUE(NeedsRemoteBinarySearch(Method::kE5));
  EXPECT_TRUE(NeedsRemoteBinarySearch(Method::kE6));
  EXPECT_TRUE(NeedsRemoteBinarySearch(Method::kL5));
  EXPECT_TRUE(NeedsRemoteBinarySearch(Method::kL6));
  EXPECT_FALSE(NeedsRemoteBinarySearch(Method::kE1));
  EXPECT_FALSE(NeedsRemoteBinarySearch(Method::kT1));
}

// ---------------------------------------------------------------------------
// Operational counts match the analytic formulas exactly.
// ---------------------------------------------------------------------------

using CostParam = std::tuple<Method, PermutationKind>;

class OperationalCostTest : public ::testing::TestWithParam<CostParam> {};

TEST_P(OperationalCostTest, RunCountsEqualDegreeFormulas) {
  const auto [method, order] = GetParam();
  const Graph g = HeavyTailedGraph(400, 5);
  Rng rng(6);
  const OrientedGraph og = OrientNamed(g, order, &rng);
  CountingSink sink;
  const OpCounts ops = RunMethod(method, og, &sink);

  const auto x = og.OutDegrees();
  const auto y = og.InDegrees();
  const double local = CostClassTotal(x, y, LocalCostClass(method));
  switch (MethodFamily(method)) {
    case Family::kVertexIterator:
      EXPECT_DOUBLE_EQ(static_cast<double>(ops.candidate_checks), local);
      EXPECT_EQ(ops.local_scans, 0);
      EXPECT_EQ(ops.lookups, 0);
      break;
    case Family::kScanningEdgeIterator: {
      const double remote = CostClassTotal(x, y, RemoteCostClass(method));
      EXPECT_DOUBLE_EQ(static_cast<double>(ops.local_scans), local);
      EXPECT_DOUBLE_EQ(static_cast<double>(ops.remote_scans), remote);
      // The actual merge can only be cheaper than the paper metric.
      EXPECT_LE(ops.merge_comparisons, ops.local_scans + ops.remote_scans);
      break;
    }
    case Family::kLookupEdgeIterator:
      EXPECT_DOUBLE_EQ(static_cast<double>(ops.lookups), local);
      // Build cost: every arc is inserted exactly once per run.
      EXPECT_EQ(ops.hash_inserts, static_cast<int64_t>(og.num_arcs()));
      break;
  }
  // PaperCost agrees with MethodCostTotal.
  EXPECT_DOUBLE_EQ(static_cast<double>(ops.PaperCost()),
                   MethodCostTotal(x, y, method));
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesOrders, OperationalCostTest,
    ::testing::Combine(::testing::ValuesIn(AllMethods()),
                       ::testing::Values(PermutationKind::kAscending,
                                         PermutationKind::kDescending,
                                         PermutationKind::kRoundRobin,
                                         PermutationKind::kUniform)),
    [](const ::testing::TestParamInfo<CostParam>& info) {
      return std::string(MethodName(std::get<0>(info.param))) + "_" +
             PermutationKindName(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Structural identities: Propositions 1-2 and equivalence classes.
// ---------------------------------------------------------------------------

TEST(CostIdentityTest, Proposition2_E1EqualsT1PlusT2) {
  const Graph g = HeavyTailedGraph(500, 7);
  for (PermutationKind order :
       {PermutationKind::kAscending, PermutationKind::kDescending,
        PermutationKind::kRoundRobin}) {
    const OrientedGraph og = OrientNamed(g, order);
    EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kE1),
                     MethodCostTotal(og, Method::kT1) +
                         MethodCostTotal(og, Method::kT2))
        << PermutationKindName(order);
  }
}

TEST(CostIdentityTest, Proposition1_ReversalSwapsXandY) {
  // c(T1, theta) == c(T3, theta') and c(T2, theta) == c(T2, theta').
  const Graph g = HeavyTailedGraph(500, 8);
  const size_t n = g.num_nodes();
  Rng rng(9);
  const Permutation theta = UniformPermutation(n, &rng);
  const OrientedGraph og = Orient(g, theta);
  const OrientedGraph og_rev = Orient(g, theta.Reverse());
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT1),
                   MethodCostTotal(og_rev, Method::kT3));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT3),
                   MethodCostTotal(og_rev, Method::kT1));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT2),
                   MethodCostTotal(og_rev, Method::kT2));
  // SEI classes map likewise: E1 <-> E3, E4 is self-paired.
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kE1),
                   MethodCostTotal(og_rev, Method::kE3));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kE4),
                   MethodCostTotal(og_rev, Method::kE4));
}

TEST(CostIdentityTest, EquivalenceClassesWithinFamilies) {
  const Graph g = HeavyTailedGraph(300, 10);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  // Figure 2: T4 ~ T1, T5 ~ T2, T6 ~ T3.
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT1),
                   MethodCostTotal(og, Method::kT4));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT2),
                   MethodCostTotal(og, Method::kT5));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT3),
                   MethodCostTotal(og, Method::kT6));
  // Figure 4: E2 ~ E1 (local/remote swap), E5 ~ E3, E6 ~ E4.
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kE1),
                   MethodCostTotal(og, Method::kE2));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kE3),
                   MethodCostTotal(og, Method::kE5));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kE4),
                   MethodCostTotal(og, Method::kE6));
}

TEST(CostIdentityTest, LookupCostsMatchSecondRowOfTable1) {
  const Graph g = HeavyTailedGraph(300, 11);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kL1),
                   MethodCostTotal(og, Method::kT2));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kL2),
                   MethodCostTotal(og, Method::kT1));
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kL4),
                   MethodCostTotal(og, Method::kT3));
}

TEST(CostIdentityTest, KnownValuesOnCompleteGraph) {
  // K_n under any order: X_i = i, Y_i = n-1-i for label i.
  const size_t n = 10;
  const Graph g = MakeComplete(n);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kAscending);
  // T1 candidates: sum_i C(i, 2) = C(n, 3).
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT1), 120.0);
  // T2: sum_i i * (n - 1 - i) = 120 for n = 10 (each triangle's middle).
  EXPECT_DOUBLE_EQ(MethodCostTotal(og, Method::kT2), 120.0);
  // On the complete graph every candidate is a triangle.
  CountingSink sink;
  const OpCounts ops = RunMethod(Method::kT1, og, &sink);
  EXPECT_EQ(ops.triangles, 120);
  EXPECT_EQ(ops.candidate_checks, 120);
}

TEST(CostIdentityTest, PerNodeCostDividesByN) {
  const Graph g = MakeComplete(10);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kAscending);
  EXPECT_DOUBLE_EQ(MethodCostPerNode(og, Method::kT1), 12.0);
}

TEST(CostIdentityTest, EmptyGraphCostsZero) {
  const Graph g = MakeEmpty(5);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kAscending);
  for (Method m : AllMethods()) {
    EXPECT_EQ(MethodCostTotal(og, m), 0.0) << MethodName(m);
  }
  const OrientedGraph og0 =
      OrientNamed(MakeEmpty(0), PermutationKind::kAscending);
  EXPECT_EQ(MethodCostPerNode(og0, Method::kT1), 0.0);
}

TEST(CostIdentityTest, BinarySearchCountsForE5E6) {
  const Graph g = HeavyTailedGraph(300, 12);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  CountingSink sink;
  const OpCounts e5 = RunMethod(Method::kE5, og, &sink);
  const OpCounts e6 = RunMethod(Method::kE6, og, &sink);
  const OpCounts e1 = RunMethod(Method::kE1, og, &sink);
  // One positioning search per arc for E5/E6; none for E1.
  EXPECT_EQ(e5.binary_searches, static_cast<int64_t>(og.num_arcs()));
  EXPECT_EQ(e6.binary_searches, static_cast<int64_t>(og.num_arcs()));
  EXPECT_EQ(e1.binary_searches, 0);
}

}  // namespace
}  // namespace trilist
