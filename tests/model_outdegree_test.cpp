#include "src/core/out_degree_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/core/discrete_model.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/order/pipeline.h"
#include "src/sim/cost_measurement.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace trilist {
namespace {

TEST(DegreesByLabelTest, AppliesPermutation) {
  const std::vector<int64_t> asc = {1, 2, 5, 9};
  const Permutation desc(std::vector<uint32_t>{3, 2, 1, 0});
  EXPECT_EQ(DegreesByLabel(asc, desc),
            (std::vector<int64_t>{9, 5, 2, 1}));
  const Permutation id(4);
  EXPECT_EQ(DegreesByLabel(asc, id), asc);
}

TEST(ExpectedOutDegreesTest, HandComputedSmallCase) {
  // Degrees by label (1, 2, 3); total weight 6 with w = identity.
  // E[X_0] = 1 * 0 / (6-1) = 0
  // E[X_1] = 2 * 1 / (6-2) = 0.5
  // E[X_2] = 3 * 3 / (6-3) = 3
  const std::vector<int64_t> by_label = {1, 2, 3};
  const auto x = ExpectedOutDegrees(by_label);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(ExpectedOutDegreesTest, SumsToEdgeCountApproximately) {
  // sum_i E[X_i] should approximate m = sum d / 2; the denominators
  // 2m - w(d_i) make it exact only asymptotically, so allow a small gap.
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 100);
  Rng rng(3);
  std::vector<int64_t> degrees(10000);
  for (auto& d : degrees) d = fn.Sample(&rng);
  std::sort(degrees.begin(), degrees.end());
  const auto by_label =
      DegreesByLabel(degrees, Permutation(degrees.size()));
  const auto x = ExpectedOutDegrees(by_label);
  const double m =
      std::accumulate(degrees.begin(), degrees.end(), 0.0) / 2.0;
  const double total = std::accumulate(x.begin(), x.end(), 0.0);
  EXPECT_NEAR(total, m, m * 0.01);
}

TEST(ExpectedOutDegreesTest, ZeroAndSingleNode) {
  EXPECT_TRUE(ExpectedOutDegrees({}).empty());
  const auto single = ExpectedOutDegrees({5});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 0.0);  // no other nodes to point at
}

TEST(QFractionsTest, MonotoneUnderAscendingOrder) {
  // Under theta_A, q_i grows with the label (more weight below you).
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 100);
  Rng rng(5);
  std::vector<int64_t> degrees(5000);
  for (auto& d : degrees) d = fn.Sample(&rng);
  std::sort(degrees.begin(), degrees.end());
  const auto q = ExpectedSmallerNeighborFractions(
      DegreesByLabel(degrees, Permutation(degrees.size())));
  for (size_t i = 1; i < q.size(); ++i) {
    EXPECT_GE(q[i] + 1e-12, q[i - 1]) << i;
  }
  EXPECT_GE(q.front(), 0.0);
  EXPECT_LE(q.back(), 1.0);
}

TEST(QFractionsTest, ReversalComplementsQ) {
  // q_i(theta') = 1 - q_i(theta) in the limit; at finite n the identity
  // q(theta)_label + q(theta')_mirror ~ 1 holds up to the self-exclusion
  // term.
  const DiscretePareto base(2.1, 33.0);
  const TruncatedDistribution fn(base, 50);
  Rng rng(7);
  std::vector<int64_t> degrees(20000);
  for (auto& d : degrees) d = fn.Sample(&rng);
  std::sort(degrees.begin(), degrees.end());
  const size_t n = degrees.size();
  const Permutation asc(n);
  const auto q_asc = ExpectedSmallerNeighborFractions(
      DegreesByLabel(degrees, asc));
  const auto q_desc = ExpectedSmallerNeighborFractions(
      DegreesByLabel(degrees, asc.Reverse()));
  for (size_t pos = 0; pos < n; pos += 997) {
    const size_t label_asc = asc(pos);
    const size_t label_desc = n - 1 - label_asc;
    EXPECT_NEAR(q_asc[label_asc] + q_desc[label_desc], 1.0, 0.01)
        << pos;
  }
}

TEST(OutDegreeModelTest, MatchesSimulatedOutDegrees) {
  // Average realized X_i over many exact-degree graphs and compare with
  // Eq. (12) positionally (bucketed to smooth the noise).
  const size_t n = 2000;
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 44);  // sqrt(2000) ~ 44
  Rng rng(11);
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  MakeGraphic(&degrees);
  std::vector<int64_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  const Permutation theta = DescendingPermutation(n);
  const auto by_label = DegreesByLabel(sorted, theta);
  const auto model_x = ExpectedOutDegrees(by_label);

  std::vector<double> mean_x(n, 0.0);
  const int kGraphs = 40;
  for (int rep = 0; rep < kGraphs; ++rep) {
    auto g = GenerateExactDegree(degrees, &rng);
    ASSERT_TRUE(g.ok());
    const OrientedGraph og =
        OrientNamed(*g, PermutationKind::kDescending);
    for (size_t i = 0; i < n; ++i) {
      mean_x[i] += static_cast<double>(og.OutDegree(static_cast<NodeId>(i)));
    }
  }
  for (double& x : mean_x) x /= kGraphs;

  // Bucket 10 consecutive labels to reduce variance, then compare.
  const size_t kBucket = 100;
  for (size_t start = 0; start + kBucket <= n; start += kBucket) {
    double sim = 0.0;
    double model = 0.0;
    for (size_t i = start; i < start + kBucket; ++i) {
      sim += mean_x[i];
      model += model_x[i];
    }
    if (model < 10.0) continue;  // skip near-empty buckets
    EXPECT_NEAR(sim, model, std::max(5.0, 0.15 * model))
        << "bucket " << start;
  }
}

TEST(SequenceConditionalCostTest, AgreesWithMeasuredCost) {
  // Proposition 4: the q-based cost tracks measured cost on realized
  // graphs of the same sequence.
  const size_t n = 20000;
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 141);
  Rng rng(13);
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  MakeGraphic(&degrees);
  std::vector<int64_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());

  for (Method m : {Method::kT1, Method::kT2, Method::kE1}) {
    const double model = SequenceConditionalCost(
        sorted, DescendingPermutation(n), m);
    RunningStats sim;
    for (int rep = 0; rep < 5; ++rep) {
      auto g = GenerateExactDegree(degrees, &rng);
      ASSERT_TRUE(g.ok());
      sim.Add(MeasurePerNodeCost(*g, m, PermutationKind::kDescending,
                                 nullptr));
    }
    EXPECT_NEAR(sim.Mean(), model, model * 0.10) << MethodName(m);
  }
}

TEST(SequenceConditionalCostTest, ConvergesToDistributionModel) {
  // Sampling the sequence from F_n and plugging into Proposition 4 must
  // approach Eq. (50) as n grows (Theorem 1's mechanism).
  const DiscretePareto base(1.7, 21.0);
  const int64_t t_n = 316;
  const TruncatedDistribution fn(base, t_n);
  const double eq50 =
      ExactDiscreteCost(fn, t_n, Method::kT1, XiMap::Descending());
  Rng rng(17);
  const size_t n = 100000;
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  std::sort(degrees.begin(), degrees.end());
  const double seq_model = SequenceConditionalCost(
      degrees, DescendingPermutation(n), Method::kT1);
  EXPECT_NEAR(seq_model, eq50, eq50 * 0.05);
}

}  // namespace
}  // namespace trilist
