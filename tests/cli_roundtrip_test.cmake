# End-to-end CLI test: generate a graph, then count its triangles with two
# methods and require identical counts.
set(graph_file "${WORKDIR}/cli_test_graph.txt")

execute_process(
  COMMAND "${CLI}" generate --n 5000 --alpha 1.7 --seed 9 --out
          "${graph_file}"
  RESULT_VARIABLE gen_result OUTPUT_VARIABLE gen_out)
if(NOT gen_result EQUAL 0)
  message(FATAL_ERROR "generate failed: ${gen_out}")
endif()

execute_process(
  COMMAND "${CLI}" count --in "${graph_file}" --method T1 --order D
  RESULT_VARIABLE count1_result OUTPUT_VARIABLE count1_out)
execute_process(
  COMMAND "${CLI}" count --in "${graph_file}" --method E4 --order RR
  RESULT_VARIABLE count2_result OUTPUT_VARIABLE count2_out)
if(NOT count1_result EQUAL 0 OR NOT count2_result EQUAL 0)
  message(FATAL_ERROR "count failed: ${count1_out} ${count2_out}")
endif()

string(REGEX MATCH "triangles ([0-9]+)" m1 "${count1_out}")
set(t1 "${CMAKE_MATCH_1}")
string(REGEX MATCH "triangles ([0-9]+)" m2 "${count2_out}")
set(t2 "${CMAKE_MATCH_1}")
if(NOT t1 STREQUAL t2)
  message(FATAL_ERROR "triangle counts disagree: T1=${t1} E4=${t2}")
endif()
if(t1 STREQUAL "" OR t1 EQUAL 0)
  message(FATAL_ERROR "no triangles found — suspicious for alpha=1.7")
endif()

file(REMOVE "${graph_file}")
