# End-to-end CLI test: generate a graph, then count its triangles with two
# methods and require identical counts.
set(graph_file "${WORKDIR}/cli_test_graph.txt")

execute_process(
  COMMAND "${CLI}" generate --n 5000 --alpha 1.7 --seed 9 --out
          "${graph_file}"
  RESULT_VARIABLE gen_result OUTPUT_VARIABLE gen_out)
if(NOT gen_result EQUAL 0)
  message(FATAL_ERROR "generate failed: ${gen_out}")
endif()

execute_process(
  COMMAND "${CLI}" count --in "${graph_file}" --method T1 --order D
  RESULT_VARIABLE count1_result OUTPUT_VARIABLE count1_out)
execute_process(
  COMMAND "${CLI}" count --in "${graph_file}" --method E4 --order RR
  RESULT_VARIABLE count2_result OUTPUT_VARIABLE count2_out)
if(NOT count1_result EQUAL 0 OR NOT count2_result EQUAL 0)
  message(FATAL_ERROR "count failed: ${count1_out} ${count2_out}")
endif()

string(REGEX MATCH "triangles ([0-9]+)" m1 "${count1_out}")
set(t1 "${CMAKE_MATCH_1}")
string(REGEX MATCH "triangles ([0-9]+)" m2 "${count2_out}")
set(t2 "${CMAKE_MATCH_1}")
if(NOT t1 STREQUAL t2)
  message(FATAL_ERROR "triangle counts disagree: T1=${t1} E4=${t2}")
endif()
if(t1 STREQUAL "" OR t1 EQUAL 0)
  message(FATAL_ERROR "no triangles found — suspicious for alpha=1.7")
endif()

# --- Binary container round trip -------------------------------------------
# text -> .tlg (with cached orientations) -> text must reproduce the exact
# input bytes, conversion must be deterministic, and `count` must accept
# the .tlg transparently with the same triangle count.
set(tlg_file "${WORKDIR}/cli_test_graph.tlg")
set(tlg_file2 "${WORKDIR}/cli_test_graph2.tlg")
set(roundtrip_file "${WORKDIR}/cli_test_graph_rt.txt")

execute_process(
  COMMAND "${CLI}" convert --in "${graph_file}" --out "${tlg_file}"
          --orders D,RR --seed 9
  RESULT_VARIABLE conv_result OUTPUT_VARIABLE conv_out)
if(NOT conv_result EQUAL 0)
  message(FATAL_ERROR "convert to .tlg failed: ${conv_out}")
endif()

execute_process(
  COMMAND "${CLI}" info --in "${tlg_file}"
  RESULT_VARIABLE info_result OUTPUT_VARIABLE info_out)
if(NOT info_result EQUAL 0)
  message(FATAL_ERROR "info failed: ${info_out}")
endif()
string(FIND "${info_out}" "csr_offsets" has_sections)
if(has_sections EQUAL -1)
  message(FATAL_ERROR "info output lists no sections: ${info_out}")
endif()

execute_process(
  COMMAND "${CLI}" count --in "${tlg_file}" --method T1 --order D
  RESULT_VARIABLE count3_result OUTPUT_VARIABLE count3_out)
if(NOT count3_result EQUAL 0)
  message(FATAL_ERROR "count on .tlg failed: ${count3_out}")
endif()
string(REGEX MATCH "triangles ([0-9]+)" m3 "${count3_out}")
set(t3 "${CMAKE_MATCH_1}")
if(NOT t3 STREQUAL t1)
  message(FATAL_ERROR "triangle counts disagree: text=${t1} tlg=${t3}")
endif()
string(FIND "${count3_out}" "cached orientation" used_cache)
if(used_cache EQUAL -1)
  message(FATAL_ERROR "count on .tlg did not use the cached orientation")
endif()

execute_process(
  COMMAND "${CLI}" convert --in "${tlg_file}" --out "${roundtrip_file}"
  RESULT_VARIABLE back_result OUTPUT_VARIABLE back_out)
if(NOT back_result EQUAL 0)
  message(FATAL_ERROR "convert back to text failed: ${back_out}")
endif()
file(SHA256 "${graph_file}" text_hash)
file(SHA256 "${roundtrip_file}" roundtrip_hash)
if(NOT text_hash STREQUAL roundtrip_hash)
  message(FATAL_ERROR "text -> .tlg -> text round trip is not byte-identical")
endif()

execute_process(
  COMMAND "${CLI}" convert --in "${graph_file}" --out "${tlg_file2}"
          --orders D,RR --seed 9 --threads 4
  RESULT_VARIABLE conv2_result OUTPUT_VARIABLE conv2_out)
if(NOT conv2_result EQUAL 0)
  message(FATAL_ERROR "second convert failed: ${conv2_out}")
endif()
file(SHA256 "${tlg_file}" tlg_hash)
file(SHA256 "${tlg_file2}" tlg2_hash)
if(NOT tlg_hash STREQUAL tlg2_hash)
  message(FATAL_ERROR ".tlg conversion is not deterministic")
endif()

# --- Observability surface --------------------------------------------------
# `run` with --trace/--metrics/--degree-profile must produce a loadable
# Chrome trace, a Prometheus exposition and a v3 JSON report with the
# degree-residual histogram filled in.
set(trace_file "${WORKDIR}/cli_test_trace.json")
set(metrics_file "${WORKDIR}/cli_test_metrics.prom")
set(report_file "${WORKDIR}/cli_test_report.json")

execute_process(
  COMMAND "${CLI}" run --in "${graph_file}" --methods T1,E1 --order D
          --degree-profile --report json --trace "${trace_file}"
          --metrics "${metrics_file}"
  RESULT_VARIABLE run_result OUTPUT_VARIABLE run_out)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "run with observability flags failed: ${run_out}")
endif()
file(WRITE "${report_file}" "${run_out}")

string(FIND "${run_out}" "\"schema_version\": 4" has_schema)
string(FIND "${run_out}" "\"degree_profiles\": [" has_profiles)
string(FIND "${run_out}" "\"total_measured_ops\"" has_measured)
string(FIND "${run_out}" "\"build\"" has_build)
string(FIND "${run_out}" "\"io\"" has_io)
string(FIND "${run_out}" "\"plan\"" has_plan)
if(has_schema EQUAL -1 OR has_profiles EQUAL -1 OR has_measured EQUAL -1
   OR has_build EQUAL -1 OR has_io EQUAL -1 OR has_plan EQUAL -1)
  message(FATAL_ERROR "run report is missing v4 sections: ${run_out}")
endif()

if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "--trace did not write ${trace_file}")
endif()
file(READ "${trace_file}" trace_content)
string(FIND "${trace_content}" "\"traceEvents\"" has_events)
string(FIND "${trace_content}" "\"name\": \"orient\"" has_orient_span)
string(FIND "${trace_content}" "\"git_hash\"" has_provenance)
if(has_events EQUAL -1 OR has_orient_span EQUAL -1 OR has_provenance EQUAL -1)
  message(FATAL_ERROR "trace file is not a valid span trace")
endif()

if(NOT EXISTS "${metrics_file}")
  message(FATAL_ERROR "--metrics did not write ${metrics_file}")
endif()
file(READ "${metrics_file}" metrics_content)
string(FIND "${metrics_content}" "# TYPE trilist_build_info gauge" has_info)
string(FIND "${metrics_content}" "trilist_method_paper_cost_ops_total" has_cost)
string(FIND "${metrics_content}" "trilist_degree_bucket_residual" has_residual)
if(has_info EQUAL -1 OR has_cost EQUAL -1 OR has_residual EQUAL -1)
  message(FATAL_ERROR "metrics file is not a valid exposition")
endif()

# `version` reports build provenance.
execute_process(
  COMMAND "${CLI}" version
  RESULT_VARIABLE ver_result OUTPUT_VARIABLE ver_out)
if(NOT ver_result EQUAL 0)
  message(FATAL_ERROR "version failed: ${ver_out}")
endif()
string(FIND "${ver_out}" "trilist" has_name)
string(FIND "${ver_out}" "flags:" has_flags)
if(has_name EQUAL -1 OR has_flags EQUAL -1)
  message(FATAL_ERROR "version output lacks provenance: ${ver_out}")
endif()

file(REMOVE "${graph_file}" "${tlg_file}" "${tlg_file2}"
     "${roundtrip_file}" "${trace_file}" "${metrics_file}"
     "${report_file}")
