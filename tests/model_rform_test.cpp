#include "src/core/r_function.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/discrete_model.h"
#include "src/core/h_function.h"
#include "src/degree/pareto.h"
#include "src/degree/simple_distributions.h"
#include "src/degree/truncated.h"

namespace trilist {
namespace {

TEST(RFunctionTest, IncreasingForIdentityAndCappedWeights) {
  // Corollary 1's premise: g(x)/w(x) is increasing for w(x) = min(x, a).
  EXPECT_TRUE(IsRIncreasing(10000, WeightFn::Identity()));
  EXPECT_TRUE(IsRIncreasing(10000, WeightFn::Capped(50.0)));
  EXPECT_TRUE(IsRIncreasing(10000, WeightFn::Capped(1.0)));
}

TEST(RFunctionTest, EvalRMatchesDirectComputation) {
  // r(x) = g(J^{-1}(x)) / w(J^{-1}(x)); at x just below J(k) the inverse
  // is k.
  const DiscretePareto base(2.1, 33.0);
  const TruncatedDistribution fn(base, 200);
  const auto j = SpreadTable(fn, 200);
  for (int64_t k : {5, 20, 80}) {
    const double x = j[static_cast<size_t>(k - 1)] - 1e-9;
    const double expected =
        GFunction(static_cast<double>(k)) / static_cast<double>(k);
    EXPECT_NEAR(EvalR(fn, 200, x), expected, 1e-9) << k;
  }
}

TEST(RFunctionTest, RIsNonDecreasingInX) {
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 300);
  double prev = -1.0;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    const double r = EvalR(fn, 300, x);
    EXPECT_GE(r, prev) << x;
    prev = r;
  }
}

class RFormEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Method, int>> {};

TEST_P(RFormEquivalenceTest, Lemma4MatchesEq50) {
  // Eq. (37) is a change of variables of Eq. (29)/(50); numerically the
  // two routes must agree up to in-block discretization error.
  const auto [method, xi_index] = GetParam();
  const XiMap xis[] = {XiMap::Ascending(), XiMap::Descending(),
                       XiMap::RoundRobin(), XiMap::Uniform()};
  const XiMap& xi = xis[xi_index];
  const DiscretePareto base(2.1, 33.0);
  const int64_t t_n = 3000;
  const TruncatedDistribution fn(base, t_n);
  const double via_50 = ExactDiscreteCost(fn, t_n, method, xi);
  const double via_37 = CostViaRForm(fn, t_n, method, xi);
  EXPECT_NEAR(via_37, via_50, via_50 * 0.02)
      << MethodName(method) << " " << xi.name();
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByMaps, RFormEquivalenceTest,
    ::testing::Combine(::testing::Values(Method::kT1, Method::kT2,
                                         Method::kE1, Method::kE4),
                       ::testing::Values(0, 1, 2, 3)));

TEST(RFormTest, ConstantDegreeIsProposition8PercolationPoint) {
  // For constant degree, r is constant, so every map must give the same
  // (37)-value = E[g(D)] E[h(U)]... except that J is degenerate: all maps
  // see xi evaluated across the whole u-range uniformly. Verify the
  // equal-cost conclusion across maps.
  const ConstantDegree dist(8);
  const double t1_asc = CostViaRForm(dist, 8, Method::kT1,
                                     XiMap::Ascending());
  const double t1_desc = CostViaRForm(dist, 8, Method::kT1,
                                      XiMap::Descending());
  const double t1_uni = CostViaRForm(dist, 8, Method::kT1, XiMap::Uniform());
  EXPECT_NEAR(t1_asc, t1_desc, 1e-9);
  EXPECT_NEAR(t1_asc, t1_uni, t1_uni * 1e-6);
  // Proposition 8 value: E[g(D)] * E[h(U)] = 56 * 1/6.
  EXPECT_NEAR(t1_asc, 56.0 / 6.0, 56.0 / 6.0 * 1e-3);
}

}  // namespace
}  // namespace trilist
