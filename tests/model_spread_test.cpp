#include "src/core/spread.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/continuous_model.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/pareto.h"
#include "src/degree/simple_distributions.h"
#include "src/degree/truncated.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(SpreadTableTest, IsACdf) {
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 500);
  const auto j = SpreadTable(fn, 500);
  ASSERT_EQ(j.size(), 500u);
  double prev = 0.0;
  for (double v : j) {
    EXPECT_GE(v, prev - 1e-15);
    prev = v;
  }
  EXPECT_NEAR(j.back(), 1.0, 1e-12);
}

TEST(SpreadTableTest, SpreadStochasticallyDominatesDegree) {
  // The inspection paradox: J(x) <= F_n(x) pointwise (size bias favors
  // larger degrees).
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 300);
  const auto j = SpreadTable(fn, 300);
  for (int64_t k = 1; k <= 300; ++k) {
    EXPECT_LE(j[static_cast<size_t>(k - 1)],
              fn.Cdf(static_cast<double>(k)) + 1e-12)
        << k;
  }
}

TEST(SpreadTableTest, CappedWeightReducesBias) {
  // With w(x) = min(x, 1), J should coincide with F_n (no bias).
  const DiscretePareto base(1.5, 15.0);
  const TruncatedDistribution fn(base, 200);
  const auto j = SpreadTable(fn, 200, WeightFn::Capped(1.0));
  for (int64_t k = 1; k <= 200; ++k) {
    EXPECT_NEAR(j[static_cast<size_t>(k - 1)],
                fn.Cdf(static_cast<double>(k)), 1e-12)
        << k;
  }
}

TEST(SpreadAtTest, MatchesTable) {
  const DiscretePareto base(2.1, 33.0);
  const TruncatedDistribution fn(base, 400);
  const auto table = SpreadTable(fn, 400);
  for (int64_t x : {1, 10, 100, 400}) {
    EXPECT_NEAR(SpreadAt(fn, 400, x), table[static_cast<size_t>(x - 1)],
                1e-12);
  }
}

TEST(SpreadClosedFormTest, MatchesEq19ForLargeTruncation) {
  // The discrete spread of the discretized Pareto approaches the
  // continuous closed form (19) when truncation is far out.
  const double alpha = 1.7;
  const double beta = 21.0;
  const DiscretePareto base(alpha, beta);
  const TruncatedDistribution fn(base, 2000000);
  const ContinuousPareto cont(alpha, beta);
  for (int64_t x : {5, 15, 40, 100, 400}) {
    const double discrete = SpreadAt(fn, 2000000, x);
    const double closed = cont.SpreadCdf(static_cast<double>(x));
    EXPECT_NEAR(discrete, closed, 0.02) << x;
  }
}

TEST(SpreadClosedFormTest, Eq19MatchesNumericPrefix) {
  // J(x) = M(x) / E[D] with M the weighted prefix integral.
  const ContinuousPareto f(2.3, 39.0);
  for (double x : {1.0, 10.0, 50.0, 300.0}) {
    EXPECT_NEAR(f.SpreadCdf(x), ParetoWeightedPrefix(f, x) / f.Mean(),
                1e-10)
        << x;
  }
}

TEST(SpreadClosedFormTest, ParetoSpreadHasHeavierTail) {
  // 1 - J(x) ~ x^(1-alpha): shape alpha - 1, one heavier than F's alpha.
  const ContinuousPareto f(2.0, 30.0);
  const double x1 = 1e5;
  const double x2 = 1e6;
  const double tail_ratio =
      (1.0 - f.SpreadCdf(x1)) / (1.0 - f.SpreadCdf(x2));
  // For shape alpha-1 = 1, tail ratio across one decade ~ 10.
  EXPECT_NEAR(std::log10(tail_ratio), 1.0, 0.05);
}

TEST(InspectionParadoxTest, WeightedPickConvergesToSpread) {
  // Proposition 5: picking node i proportional to w(D_i) yields degree
  // distribution J in the limit.
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 100);
  Rng rng(21);
  const size_t n = 20000;
  std::vector<int64_t> degrees(n);
  double total_weight = 0.0;
  for (auto& d : degrees) {
    d = fn.Sample(&rng);
    total_weight += static_cast<double>(d);
  }
  // Empirical CDF of the weighted pick (exact, no sampling noise).
  std::vector<double> mass(101, 0.0);
  for (int64_t d : degrees) {
    mass[static_cast<size_t>(d)] += static_cast<double>(d) / total_weight;
  }
  const auto j = SpreadTable(fn, 100);
  double cum = 0.0;
  for (int64_t k = 1; k <= 100; ++k) {
    cum += mass[static_cast<size_t>(k)];
    EXPECT_NEAR(cum, j[static_cast<size_t>(k - 1)], 0.03) << k;
  }
}

TEST(EmpiricalSpreadTest, Lemma2Convergence) {
  // q_{ceil(nu)}(theta_A) -> J(F^{-1}(u)): the empirical weighted prefix
  // at ascending position nu approaches the spread at the u-quantile.
  const DiscretePareto base(1.7, 21.0);
  const TruncatedDistribution fn(base, 200);
  Rng rng(23);
  const size_t n = 50000;
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  const auto empirical = EmpiricalSpread(degrees);
  const auto j = SpreadTable(fn, 200);
  for (double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const size_t pos = static_cast<size_t>(u * n);
    const int64_t quantile = fn.Quantile(u);
    // Compare against J just below the quantile (ties inflate slightly).
    const double target = j[static_cast<size_t>(quantile - 1)];
    EXPECT_NEAR(empirical[pos], target, 0.05) << "u=" << u;
  }
}

TEST(EmpiricalSpreadTest, HandlesEmptyAndUniformDegrees) {
  EXPECT_TRUE(EmpiricalSpread({}).empty());
  const auto j = EmpiricalSpread({3, 3, 3, 3});
  ASSERT_EQ(j.size(), 4u);
  EXPECT_NEAR(j[0], 0.25, 1e-12);
  EXPECT_NEAR(j[3], 1.0, 1e-12);
}

TEST(WeightFnTest, IdentityAndCapped) {
  const WeightFn id = WeightFn::Identity();
  EXPECT_EQ(id(5.0), 5.0);
  EXPECT_EQ(id(1e12), 1e12);
  const WeightFn capped = WeightFn::Capped(10.0);
  EXPECT_EQ(capped(5.0), 5.0);
  EXPECT_EQ(capped(50.0), 10.0);
}

}  // namespace
}  // namespace trilist
