#include "src/algo/local_counts.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/algo/brute_force.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/builder.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(LocalCountsTest, CompleteGraph) {
  // In K_5 every vertex sits on C(4,2) = 6 triangles.
  const auto counts = TrianglesPerVertex(MakeComplete(5));
  for (uint64_t c : counts) EXPECT_EQ(c, 6u);
  const auto coeffs = LocalClusteringCoefficients(MakeComplete(5));
  for (double c : coeffs) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(LocalCountsTest, BowTieSharedVertex) {
  // Two triangles sharing node 0: node 0 counts 2, the rest count 1.
  const Graph g = MakeBowTie(3);
  const auto counts = TrianglesPerVertex(g);
  EXPECT_EQ(counts[0], 2u);
  for (size_t v = 1; v < g.num_nodes(); ++v) EXPECT_EQ(counts[v], 1u);
}

TEST(LocalCountsTest, TriangleFreeGraphs) {
  for (const Graph& g : {MakeStar(10), MakePath(10), MakeCycle(8)}) {
    const auto counts = TrianglesPerVertex(g);
    for (uint64_t c : counts) EXPECT_EQ(c, 0u);
  }
}

TEST(LocalCountsTest, CornerSumIsThreeTimesTriangles) {
  Rng rng(3);
  const Graph g = GenerateGnp(200, 0.08, &rng);
  const auto counts = TrianglesPerVertex(g);
  const uint64_t corner_sum =
      std::accumulate(counts.begin(), counts.end(), uint64_t{0});
  EXPECT_EQ(corner_sum, 3 * CountTrianglesReference(g));
}

TEST(LocalCountsTest, MethodAndOrderInvariant) {
  Rng rng(5);
  const Graph g = GenerateGnp(120, 0.1, &rng);
  const auto reference = TrianglesPerVertex(g, Method::kE1,
                                            PermutationKind::kDescending);
  for (Method m : {Method::kT1, Method::kT3, Method::kE4, Method::kL2}) {
    for (PermutationKind kind :
         {PermutationKind::kAscending, PermutationKind::kRoundRobin,
          PermutationKind::kDegenerate}) {
      EXPECT_EQ(TrianglesPerVertex(g, m, kind), reference)
          << MethodName(m) << " " << PermutationKindName(kind);
    }
  }
}

TEST(TriangleStatsTest, CompleteGraphValues) {
  const TriangleStats s = ComputeTriangleStats(MakeComplete(6));
  EXPECT_EQ(s.triangles, 20u);
  EXPECT_DOUBLE_EQ(s.wedges, 60.0);  // 6 * C(5,2)
  EXPECT_DOUBLE_EQ(s.transitivity, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_local, 1.0);
  EXPECT_EQ(s.max_per_vertex, 10u);  // C(5,2)
}

TEST(TriangleStatsTest, EmptyAndEdgelessGraphs) {
  const TriangleStats s = ComputeTriangleStats(MakeEmpty(5));
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_EQ(s.transitivity, 0.0);
  EXPECT_EQ(s.mean_local, 0.0);
  const TriangleStats s0 = ComputeTriangleStats(MakeEmpty(0));
  EXPECT_EQ(s0.triangles, 0u);
}

TEST(TriangleStatsTest, ErGraphTransitivityNearP) {
  // In G(n, p) the expected transitivity is ~p.
  Rng rng(7);
  const double p = 0.06;
  double acc = 0.0;
  const int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    acc += ComputeTriangleStats(GenerateGnp(300, p, &rng)).transitivity;
  }
  EXPECT_NEAR(acc / kTrials, p, 0.012);
}

}  // namespace
}  // namespace trilist
