#include "src/order/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/algo/cost.h"
#include "src/core/out_degree_model.h"
#include "src/gen/erdos_renyi.h"
#include "src/graph/binfmt.h"
#include "src/graph/builder.h"
#include "src/order/aot.h"
#include "src/order/named_orders.h"
#include "src/order/split.h"
#include "src/serve/catalog.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

/// Every kind the enum declares, in declaration order.
const std::vector<PermutationKind> kAllKinds = {
    PermutationKind::kAscending,
    PermutationKind::kDescending,
    PermutationKind::kRoundRobin,
    PermutationKind::kComplementaryRoundRobin,
    PermutationKind::kUniform,
    PermutationKind::kDegenerate,
    PermutationKind::kAot,
    PermutationKind::kSplit,
};

TEST(OrderingRegistryTest, EveryKindRegisteredInDeclarationOrder) {
  const OrderingRegistry& reg = OrderingRegistry::Instance();
  ASSERT_EQ(reg.all().size(), kAllKinds.size());
  for (size_t i = 0; i < kAllKinds.size(); ++i) {
    const OrderingProvider* p = reg.all()[i];
    EXPECT_EQ(p->kind(), kAllKinds[i]);
    EXPECT_STREQ(p->key(), PermutationKindName(kAllKinds[i]));
    EXPECT_EQ(&reg.Of(kAllKinds[i]), p);
  }
}

TEST(OrderingRegistryTest, LookupByCliNameAndKey) {
  const OrderingRegistry& reg = OrderingRegistry::Instance();
  for (const OrderingProvider* p : reg.all()) {
    EXPECT_EQ(reg.FindByName(p->cli_name()), p) << p->cli_name();
    EXPECT_EQ(reg.FindByName(p->key()), p) << p->key();
  }
  EXPECT_EQ(reg.FindByName("no-such-order"), nullptr);
  EXPECT_EQ(reg.FindByName(""), nullptr);
}

TEST(OrderingRegistryTest, CapabilityFlags) {
  const OrderingRegistry& reg = OrderingRegistry::Instance();
  for (const OrderingProvider* p : reg.all()) {
    const bool dependent = p->kind() == PermutationKind::kDegenerate ||
                           p->kind() == PermutationKind::kAot;
    EXPECT_EQ(p->graph_dependent(), dependent) << p->key();
    EXPECT_EQ(p->positional(), !dependent) << p->key();
    EXPECT_EQ(p->seeded(), p->kind() == PermutationKind::kUniform)
        << p->key();
  }
}

TEST(OrderingRegistryTest, LabelsAreBijectionsOnEveryProvider) {
  Rng rng(13);
  const Graph g = GenerateGnp(120, 0.06, &rng);
  const OrderingRegistry& reg = OrderingRegistry::Instance();
  for (const OrderingProvider* p : reg.all()) {
    const std::vector<NodeId> labels = p->Labels(g, /*seed=*/5);
    ASSERT_EQ(labels.size(), g.num_nodes()) << p->key();
    std::vector<bool> seen(g.num_nodes(), false);
    for (const NodeId l : labels) {
      ASSERT_LT(l, g.num_nodes()) << p->key();
      EXPECT_FALSE(seen[l]) << p->key();
      seen[l] = true;
    }
  }
}

TEST(AotOrderTest, HubsTakeTheSmallestLabels) {
  // A star within an otherwise sparse graph: the center is the only node
  // above the automatic hub threshold, so it must receive label 0.
  const Graph g = MakeStar(50);
  const int64_t tau = AotAutoHubThreshold(g);
  EXPECT_GE(tau, 16);
  const std::vector<NodeId> labels = AotLabels(g);
  NodeId center = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v) {
    if (g.Degree(v) > g.Degree(center)) center = v;
  }
  EXPECT_EQ(labels[center], 0u);
}

TEST(AotOrderTest, RegistryLabelsMatchDirectConstruction) {
  Rng rng(17);
  const Graph g = GenerateGnp(90, 0.08, &rng);
  const std::vector<NodeId> direct = AotLabels(g);
  const std::vector<NodeId> via_registry =
      OrderingRegistry::Instance().Of(PermutationKind::kAot).Labels(g, 0);
  EXPECT_EQ(direct, via_registry);
}

TEST(SplitOrderTest, EndpointsAreThePureDegreeOrders) {
  for (const size_t n : {1u, 2u, 7u, 64u}) {
    const Permutation as_a = SplitPermutation(n, 0);
    const Permutation as_d = SplitPermutation(n, n);
    const Permutation a = AscendingPermutation(n);
    const Permutation d = DescendingPermutation(n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(as_a(i), a(i)) << "n=" << n << " i=" << i;
      EXPECT_EQ(as_d(i), d(i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SplitOrderTest, MidSplitsAreValidAndMatchTheFormula) {
  const size_t n = 33;
  for (const size_t s : {1u, 5u, 16u, 32u}) {
    const Permutation theta = SplitPermutation(n, s);
    ASSERT_TRUE(theta.IsValid()) << s;
    for (size_t i = 0; i < n; ++i) {
      const size_t expected = i < n - s ? s + i : n - 1 - i;
      EXPECT_EQ(theta(i), expected) << "s=" << s << " i=" << i;
    }
  }
}

TEST(SplitOrderTest, TailoredSplitNeverLosesToPureDegreeOrders) {
  // The tailored index minimizes the best-fundamental-method cost over a
  // grid that includes s = 0 (theta_A) and s = n (theta_D), so it can
  // never price worse than either endpoint.
  std::vector<int64_t> degrees;
  for (size_t i = 0; i < 200; ++i) {
    degrees.push_back(1 + static_cast<int64_t>(i * i / 150));  // skewed
  }
  std::sort(degrees.begin(), degrees.end());
  const auto best_cost = [&](const Permutation& theta) {
    double best = std::numeric_limits<double>::infinity();
    for (const Method m : FundamentalMethods()) {
      best = std::min(best, SequenceConditionalCost(degrees, theta, m));
    }
    return best;
  };
  const double split = best_cost(TailoredSplitPermutation(degrees));
  const double pure_a = best_cost(AscendingPermutation(degrees.size()));
  const double pure_d = best_cost(DescendingPermutation(degrees.size()));
  EXPECT_LE(split, pure_a);
  EXPECT_LE(split, pure_d);
}

TEST(OrientSpecTest, KeySeparatesExactlyTheDistinctSpecs) {
  // Equal specs have equal keys; distinct specs have distinct keys. The
  // seed is part of the identity only for theta_U.
  const OrientSpec u1{PermutationKind::kUniform, 1};
  const OrientSpec u2{PermutationKind::kUniform, 2};
  EXPECT_FALSE(u1 == u2);
  EXPECT_NE(u1.Key(), u2.Key());

  const OrientSpec d1{PermutationKind::kDescending, 1};
  const OrientSpec d2{PermutationKind::kDescending, 2};
  EXPECT_TRUE(d1 == d2);
  EXPECT_EQ(d1.Key(), d2.Key());

  const OrientSpec aot{PermutationKind::kAot, 0};
  const OrientSpec split{PermutationKind::kSplit, 0};
  EXPECT_FALSE(aot == split);
  EXPECT_NE(aot.Key(), split.Key());
}

bool SameOrientation(const OrientedGraph& a, const OrientedGraph& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  for (NodeId v = 0; v < static_cast<NodeId>(a.num_nodes()); ++v) {
    if (a.OutDegree(v) != b.OutDegree(v)) return false;
    const auto an = a.OutNeighbors(v);
    const auto bn = b.OutNeighbors(v);
    if (!std::equal(an.begin(), an.end(), bn.begin(), bn.end())) {
      return false;
    }
  }
  return true;
}

TEST(OrientationCacheTest, TlgRoundTripsTheNewOrders) {
  Rng rng(23);
  const Graph g = GenerateGnp(80, 0.1, &rng);
  const std::vector<OrientSpec> specs = {
      {PermutationKind::kDescending, 0},
      {PermutationKind::kAot, 0},
      {PermutationKind::kSplit, 0},
  };
  const std::string path =
      ::testing::TempDir() + "/registry_orders.tlg";
  TlgWriteOptions opts;
  opts.orientations = specs;
  ASSERT_TRUE(WriteTlgFile(g, path, opts).ok());

  Result<TlgFile> t = TlgFile::Open(path);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (const OrientSpec& spec : specs) {
    const OrientedGraph* cached = t.ValueOrDie().FindOrientation(spec);
    ASSERT_NE(cached, nullptr) << spec.Key();
    EXPECT_TRUE(SameOrientation(*cached, OrientWithSpec(g, spec)))
        << spec.Key();
  }
  // Distinct orderings must not alias each other's cached CSR.
  const OrientedGraph* d =
      t.ValueOrDie().FindOrientation({PermutationKind::kDescending, 0});
  const OrientedGraph* aot =
      t.ValueOrDie().FindOrientation({PermutationKind::kAot, 0});
  ASSERT_NE(d, nullptr);
  ASSERT_NE(aot, nullptr);
  EXPECT_NE(d, aot);
  std::remove(path.c_str());
}

TEST(OrientationCacheTest, CatalogKeysBuildsPerDistinctOrdering) {
  // Four distinct orderings -> four builds; re-asking for any of them is
  // a hit, never a rebuild under a colliding key.
  const std::string path = ::testing::TempDir() + "/catalog_orders.txt";
  {
    std::ofstream out(path);
    const Graph g = MakeComplete(6);
    for (const Edge& e : g.EdgeList()) {
      out << e.first << " " << e.second << "\n";
    }
  }
  serve::CatalogOptions options;
  options.named["g"] = path;
  serve::GraphCatalog catalog(options);
  serve::ErrorCode code;
  auto acquired = catalog.Acquire("g", &code);
  ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
  const auto entry = acquired.ValueOrDie().entry;

  const std::vector<OrientSpec> specs = {
      {PermutationKind::kDescending, 0},
      {PermutationKind::kAot, 0},
      {PermutationKind::kSplit, 0},
      {PermutationKind::kUniform, 1},
      {PermutationKind::kUniform, 2},  // distinct seed = distinct ordering
  };
  for (const OrientSpec& spec : specs) {
    EXPECT_FALSE(catalog.Orient(entry, spec, 1).cached) << spec.Key();
  }
  for (const OrientSpec& spec : specs) {
    EXPECT_TRUE(catalog.Orient(entry, spec, 1).cached) << spec.Key();
  }
  const serve::CatalogStats stats = catalog.StatsSnapshot();
  EXPECT_EQ(stats.orientations_built, specs.size());
  EXPECT_EQ(stats.orientation_hits, specs.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trilist
