#!/usr/bin/env bash
# Acceptance (c), process half: SIGTERM sent while a request is in
# flight lets that request finish (the client gets its response) and the
# daemon exits 0. Run by ctest as:
#   serve_drain_test.sh <path-to-trilist_cli>
set -u

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() { echo "FAIL: $*" >&2; exit 1; }

"$CLI" generate --n 500 --alpha 1.7 --seed 3 --out g.txt >/dev/null \
  || fail "generate"

SOCK="$WORKDIR/drain.sock"
# The exec-delay knob holds the in-flight request long enough for the
# SIGTERM to land mid-execution deterministically.
TRILIST_SERVE_EXEC_DELAY_S=1.0 \
  "$CLI" serve --unix "$SOCK" --graph "g=$WORKDIR/g.txt" \
  > serve.out 2>&1 &
SERVE_PID=$!

# Wait for the socket to appear (readiness).
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || fail "server socket never appeared"

"$CLI" query --unix "$SOCK" --graph g > query.out 2>&1 &
QUERY_PID=$!

# Let the request get admitted and begin executing, then drain.
sleep 0.3
kill -TERM "$SERVE_PID" || fail "kill"

wait "$QUERY_PID"
QUERY_RC=$?
wait "$SERVE_PID"
SERVE_RC=$?

[ "$QUERY_RC" -eq 0 ] || { cat query.out >&2; fail "in-flight query rc=$QUERY_RC"; }
grep -q "triangles" query.out || { cat query.out >&2; fail "no triangles in query output"; }
[ "$SERVE_RC" -eq 0 ] || { cat serve.out >&2; fail "server exit rc=$SERVE_RC"; }
grep -q "drained: 1 ok" serve.out || { cat serve.out >&2; fail "drain summary missing"; }
[ ! -S "$SOCK" ] || fail "socket not unlinked on shutdown"

echo "PASS"
