#include "src/run/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/algo/cost.h"
#include "src/run/run_spec.h"
#include "src/run/runner.h"

namespace trilist {
namespace {

std::vector<int64_t> ParetoLikeDegrees(size_t n) {
  std::vector<int64_t> degrees;
  degrees.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Roughly d ~ (n/(n-i))^(1/alpha): a heavy upper tail.
    const double u = static_cast<double>(n - i) / static_cast<double>(n);
    degrees.push_back(1 + static_cast<int64_t>(3.0 / std::pow(u, 0.6)));
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

bool HasSei(const std::vector<Method>& methods) {
  return std::any_of(methods.begin(), methods.end(), [](Method m) {
    return MethodFamily(m) == Family::kScanningEdgeIterator;
  });
}

TEST(PlannerTest, CandidateAxesAreAsDocumented) {
  const auto& orders = PlannerOrderCandidates();
  EXPECT_EQ(orders.size(), 5u);
  EXPECT_EQ(std::count(orders.begin(), orders.end(),
                       PermutationKind::kUniform),
            0);
  EXPECT_EQ(std::count(orders.begin(), orders.end(),
                       PermutationKind::kDegenerate),
            0);
  EXPECT_EQ(std::count(orders.begin(), orders.end(), PermutationKind::kSplit),
            1);
  const auto& backends = PlannerBackendCandidates();
  EXPECT_EQ(backends.size(), 3u);
}

TEST(PlannerTest, FullAutoMatchesManualEnumeration) {
  const cost::CostModel model(ParetoLikeDegrees(256));
  PlannerRequest req;
  req.auto_method = true;
  req.auto_order = true;
  req.auto_intersect = true;
  const PlanResult plan = ResolvePlan(model, req);

  double manual_best = std::numeric_limits<double>::infinity();
  size_t manual_count = 0;
  for (const Method m : FundamentalMethods()) {
    for (const PermutationKind kind : PlannerOrderCandidates()) {
      const std::vector<IntersectBackend> backends =
          HasSei({m}) ? PlannerBackendCandidates()
                      : std::vector<IntersectBackend>{IntersectBackend::kMerge};
      for (const IntersectBackend b : backends) {
        ++manual_count;
        manual_best = std::min(
            manual_best, model.PredictedTotalCost({kind, 0}, {m}, b));
      }
    }
  }
  EXPECT_EQ(plan.candidates.size(), manual_count);
  EXPECT_DOUBLE_EQ(plan.chosen.predicted_cost, manual_best);

  // The ranking is sorted ascending and the argmin leads it.
  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_DOUBLE_EQ(plan.candidates.front().predicted_cost,
                   plan.chosen.predicted_cost);
  for (size_t i = 1; i < plan.candidates.size(); ++i) {
    EXPECT_LE(plan.candidates[i - 1].predicted_cost,
              plan.candidates[i].predicted_cost);
  }
}

TEST(PlannerTest, PinnedAxesAreNeverOverridden) {
  const cost::CostModel model(ParetoLikeDegrees(128));
  PlannerRequest req;
  req.auto_order = true;
  req.methods = {Method::kT1};
  req.intersect = IntersectBackend::kGallop;
  const PlanResult plan = ResolvePlan(model, req);

  ASSERT_EQ(plan.chosen.methods.size(), 1u);
  EXPECT_EQ(plan.chosen.methods[0], Method::kT1);
  EXPECT_EQ(plan.chosen.intersect, IntersectBackend::kGallop);
  // Only the order axis was free: one candidate per order kind.
  EXPECT_EQ(plan.candidates.size(), PlannerOrderCandidates().size());
  // And the chosen order is the T1 argmin over that axis.
  double best = std::numeric_limits<double>::infinity();
  for (const PermutationKind kind : PlannerOrderCandidates()) {
    best = std::min(best,
                    model.PredictedTotalCost({kind, 0}, {Method::kT1},
                                             IntersectBackend::kGallop));
  }
  EXPECT_DOUBLE_EQ(plan.chosen.predicted_cost, best);
}

TEST(PlannerTest, BackendAxisCollapsesWithoutScanningMethods) {
  const cost::CostModel model(ParetoLikeDegrees(128));
  PlannerRequest req;
  req.auto_intersect = true;
  req.methods = {Method::kT1};  // vertex iterator: no intersection loop
  const PlanResult plan = ResolvePlan(model, req);
  EXPECT_EQ(plan.candidates.size(), 1u);
  EXPECT_EQ(plan.chosen.intersect, IntersectBackend::kMerge);

  req.methods = {Method::kE1};  // SEI: the backend axis is real
  const PlanResult sei_plan = ResolvePlan(model, req);
  EXPECT_EQ(sei_plan.candidates.size(), PlannerBackendCandidates().size());
  // The chosen backend is at least as cheap as scalar merge.
  EXPECT_LE(sei_plan.chosen.predicted_cost,
            model.PredictedTotalCost(req.orient, {Method::kE1},
                                     IntersectBackend::kMerge));
}

TEST(PlannerTest, ChosenPlanIsExecutableAndPredictionsAreFinite) {
  const cost::CostModel model(ParetoLikeDegrees(64));
  PlannerRequest req;
  req.auto_method = true;
  req.auto_order = true;
  const PlanResult plan = ResolvePlan(model, req);
  EXPECT_FALSE(plan.chosen.methods.empty());
  EXPECT_GT(plan.chosen.predicted_ops, 0);
  EXPECT_GT(plan.chosen.predicted_cost, 0);
  EXPECT_TRUE(std::isfinite(plan.chosen.predicted_cost));
}

GenerateSpec SmallPareto() {
  GenerateSpec gen;
  gen.n = 3000;
  gen.alpha = 1.7;
  return gen;
}

TEST(PlannerPipelineTest, AutoEverythingPopulatesThePlanReport) {
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(SmallPareto());
  spec.plan.method = true;
  spec.plan.order = true;
  spec.plan.intersect = true;
  auto report = RunPipeline(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(report->plan.planned);
  EXPECT_TRUE(report->plan.auto_method);
  EXPECT_TRUE(report->plan.auto_order);
  EXPECT_TRUE(report->plan.auto_intersect);
  ASSERT_FALSE(report->plan.methods.empty());
  EXPECT_FALSE(report->plan.order.empty());
  EXPECT_FALSE(report->plan.intersect.empty());
  EXPECT_GT(report->plan.candidates, 1);
  EXPECT_GT(report->plan.predicted_cost, 0);
  // The run executed exactly the planned configuration.
  ASSERT_EQ(report->methods.size(), report->plan.methods.size());
  EXPECT_EQ(MethodName(report->methods[0].method), report->plan.methods[0]);
  EXPECT_EQ(report->order, report->plan.order);
  // The listing ran, so the audit has a measured side.
  EXPECT_GT(report->plan.measured_ops, 0);
  EXPECT_GT(report->plan.measured_cost, 0);
  // And the planner stage was timed.
  EXPECT_GE(report->stages.WallOf("plan"), 0.0);

  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"planned\": true"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":"), std::string::npos);
}

TEST(PlannerPipelineTest, PinnedRunsReportAnUnplannedSection) {
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(SmallPareto());
  spec.methods = {Method::kE1};
  auto report = RunPipeline(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->plan.planned);
  EXPECT_EQ(report->plan.candidates, 0);
  EXPECT_NE(report->ToJson().find("\"planned\": false"), std::string::npos);
}

TEST(PlannerPipelineTest, PlannedOrderKeyMatchesTheChosenSpec) {
  RunSpec spec;
  spec.source = GraphSource::FromGenerator(SmallPareto());
  spec.plan.order = true;
  spec.methods = {Method::kE4};
  auto report = RunPipeline(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->plan.planned);
  EXPECT_FALSE(report->plan.auto_method);
  // Pinned method survives planning.
  ASSERT_EQ(report->methods.size(), 1u);
  EXPECT_EQ(report->methods[0].method, Method::kE4);
  // The report's top-level order is the planned one.
  EXPECT_EQ(report->order, report->plan.order);
}

}  // namespace
}  // namespace trilist
