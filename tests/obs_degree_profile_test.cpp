#include "src/obs/degree_profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/algo/triangle_sink.h"
#include "src/core/h_function.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/graph/builder.h"
#include "src/graph/edge_set.h"
#include "src/order/pipeline.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"

namespace trilist::obs {
namespace {

Graph HeavyTailedGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  const DiscretePareto base(1.5, 6.0);
  const TruncatedDistribution fn(base, 25);
  std::vector<int64_t> degrees(n);
  for (auto& d : degrees) d = fn.Sample(&rng);
  MakeGraphic(&degrees);
  ResidualGenOptions options;
  options.strict = false;
  return GenerateExactDegree(degrees, &rng, nullptr, options).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Bucket geometry.
// ---------------------------------------------------------------------------

TEST(DegreeBucketTest, IndexBoundaries) {
  EXPECT_EQ(DegreeBucketIndex(-5), 0);
  EXPECT_EQ(DegreeBucketIndex(0), 0);
  EXPECT_EQ(DegreeBucketIndex(1), 1);
  EXPECT_EQ(DegreeBucketIndex(2), 2);
  EXPECT_EQ(DegreeBucketIndex(3), 2);
  EXPECT_EQ(DegreeBucketIndex(4), 3);
  EXPECT_EQ(DegreeBucketIndex(7), 3);
  EXPECT_EQ(DegreeBucketIndex(8), 4);
  EXPECT_EQ(DegreeBucketIndex((int64_t{1} << 40) - 1), 40);
  EXPECT_EQ(DegreeBucketIndex(int64_t{1} << 40), 41);
}

TEST(DegreeBucketTest, RangesRoundTripThroughIndex) {
  EXPECT_EQ(BucketMinDegree(0), 0);
  EXPECT_EQ(BucketMaxDegree(0), 0);
  for (int k = 1; k <= 40; ++k) {
    // A bucket's own endpoints land back in the bucket, and the
    // neighbors just outside land in the adjacent buckets.
    EXPECT_EQ(DegreeBucketIndex(BucketMinDegree(k)), k);
    EXPECT_EQ(DegreeBucketIndex(BucketMaxDegree(k)), k);
    EXPECT_EQ(DegreeBucketIndex(BucketMinDegree(k) - 1), k - 1);
    EXPECT_EQ(BucketMaxDegree(k) + 1, BucketMinDegree(k + 1));
  }
}

TEST(DegreeBucketTest, ResidualDegenerateGuards) {
  DegreeBucket b;
  EXPECT_EQ(b.Residual(), 0.0);  // 0 measured / 0 predicted
  b.measured_ops = 5;
  EXPECT_EQ(b.Residual(), 5.0);  // measured with vanished prediction
  b.predicted_ops = 10.0;
  EXPECT_DOUBLE_EQ(b.Residual(), -0.5);
  DegreeProfile p;
  EXPECT_EQ(p.TotalResidual(), 0.0);
}

// ---------------------------------------------------------------------------
// Recorder.
// ---------------------------------------------------------------------------

TEST(NodeOpsRecorderTest, AccumulatesPerNode) {
  NodeOpsRecorder recorder(4);
  recorder.Record(1, 10);
  recorder.Record(1, 5);
  recorder.Record(3, 7);
  EXPECT_EQ(recorder.ops()[0], 0);
  EXPECT_EQ(recorder.ops()[1], 15);
  EXPECT_EQ(recorder.ops()[3], 7);
  EXPECT_EQ(recorder.Total(), 22);
}

// ---------------------------------------------------------------------------
// Profile construction.
// ---------------------------------------------------------------------------

TEST(BuildDegreeProfileTest, GroupsNodesAndPairsPrediction) {
  // Star with 8 leaves: hub degree 8 (bucket 4), leaves degree 1
  // (bucket 1). Ascending degree order gives the hub the highest label,
  // so every arc points hub -> leaf: X_hub = 8, X_leaf = 0.
  const Graph g = MakeStar(9);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kAscending);
  std::vector<int64_t> node_ops(og.num_nodes(), 3);

  const DegreeProfile profile =
      BuildDegreeProfile(Method::kT1, og, node_ops);
  EXPECT_EQ(profile.method, Method::kT1);
  ASSERT_EQ(profile.buckets.size(), 5u);  // dense up to bucket 4

  const DegreeBucket& leaves = profile.buckets[1];
  EXPECT_EQ(leaves.nodes, 8);
  EXPECT_EQ(leaves.measured_ops, 8 * 3);
  // d = 1 nodes carry no prediction: g(1) = 0 and q is ill-defined.
  EXPECT_EQ(leaves.predicted_ops, 0.0);

  const DegreeBucket& hub = profile.buckets[4];
  EXPECT_EQ(hub.nodes, 1);
  EXPECT_EQ(hub.d_min, 8);
  EXPECT_EQ(hub.d_max, 15);
  EXPECT_EQ(hub.measured_ops, 3);
  // Hand check: g(8) h_T1(8/8) = 56 * h_T1(1).
  EXPECT_DOUBLE_EQ(hub.predicted_ops, 56.0 * EvalH(Method::kT1, 1.0));

  EXPECT_EQ(profile.total_measured, 9 * 3);
  EXPECT_DOUBLE_EQ(profile.total_predicted, hub.predicted_ops);
  EXPECT_EQ(profile.buckets[2].nodes, 0);  // empty middle buckets exist
  EXPECT_EQ(profile.buckets[3].nodes, 0);
}

TEST(BuildDegreeProfileTest, MatchesPerNodeFormulaOnRandomGraph) {
  const Graph g = HeavyTailedGraph(400, 99);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  std::vector<int64_t> node_ops(og.num_nodes());
  for (size_t i = 0; i < node_ops.size(); ++i) {
    node_ops[i] = static_cast<int64_t>(i % 11);
  }
  const DegreeProfile profile =
      BuildDegreeProfile(Method::kL1, og, node_ops);

  // Recompute the same aggregation with a plain per-node loop.
  int64_t measured = 0;
  double predicted = 0;
  for (size_t i = 0; i < node_ops.size(); ++i) {
    const auto v = static_cast<NodeId>(i);
    measured += node_ops[i];
    const int64_t d = og.TotalDegree(v);
    if (d >= 2) {
      const double q =
          static_cast<double>(og.OutDegree(v)) / static_cast<double>(d);
      predicted +=
          GFunction(static_cast<double>(d)) * EvalH(Method::kL1, q);
    }
  }
  EXPECT_EQ(profile.total_measured, measured);
  EXPECT_DOUBLE_EQ(profile.total_predicted, predicted);

  int64_t bucket_nodes = 0;
  for (const DegreeBucket& b : profile.buckets) {
    EXPECT_EQ(b.d_min, BucketMinDegree(b.bucket));
    EXPECT_EQ(b.d_max, BucketMaxDegree(b.bucket));
    bucket_nodes += b.nodes;
  }
  EXPECT_EQ(bucket_nodes, static_cast<int64_t>(og.num_nodes()));
}

// The core attribution invariant: for every method, the per-node hook
// records exactly the operations the kernel counts toward the paper cost,
// so the profile's measured total reproduces OpCounts::PaperCost().
TEST(BuildDegreeProfileTest, HookTotalMatchesPaperCostForAllMethods) {
  const Graph g = HeavyTailedGraph(600, 7);
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og);
  for (Method m : AllMethods()) {
    CountingSink baseline_sink;
    const OpCounts baseline = RunMethod(m, og, arcs, &baseline_sink);

    NodeOpsRecorder recorder(og.num_nodes());
    CountingSink sink;
    const OpCounts profiled =
        RunMethodProfiled(m, og, arcs, &sink, &recorder);

    EXPECT_EQ(profiled.triangles, baseline.triangles) << MethodName(m);
    EXPECT_EQ(profiled.PaperCost(), baseline.PaperCost()) << MethodName(m);
    EXPECT_EQ(recorder.Total(), profiled.PaperCost()) << MethodName(m);

    const DegreeProfile profile =
        BuildDegreeProfile(m, og, recorder.ops());
    EXPECT_EQ(profile.total_measured, profiled.PaperCost())
        << MethodName(m);
    EXPECT_GT(profile.total_predicted, 0.0) << MethodName(m);
  }
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

TEST(DegreeProfileRenderTest, JsonLayout) {
  DegreeProfile profile;
  profile.method = Method::kE1;
  DegreeBucket b;
  b.bucket = 2;
  b.d_min = 2;
  b.d_max = 3;
  b.nodes = 5;
  b.measured_ops = 768;
  b.predicted_ops = 512.0;
  profile.buckets.push_back(b);
  profile.total_measured = 768;
  profile.total_predicted = 512.0;

  JsonWriter w;
  AppendDegreeProfileJson(profile, &w);
  const std::string json = std::move(w).Finish();
  EXPECT_NE(json.find("\"method\": \"E1\""), std::string::npos);
  EXPECT_NE(json.find("\"total_measured_ops\": 768"), std::string::npos);
  EXPECT_NE(json.find("\"total_predicted_ops\": 512.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"total_residual\": 0.500000"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
  EXPECT_NE(json.find("\"d_min\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"residual\": 0.500000"), std::string::npos);
}

TEST(DegreeProfileRenderTest, TableMentionsBucketsAndTotal) {
  DegreeProfile profile;
  profile.method = Method::kL3;
  DegreeBucket b;
  b.bucket = 1;
  b.d_min = 1;
  b.d_max = 1;
  b.nodes = 2;
  b.measured_ops = 10;
  b.predicted_ops = 8.0;
  profile.buckets.push_back(b);
  profile.total_measured = 10;
  profile.total_predicted = 8.0;

  const std::string table = DegreeProfileTable(profile);
  EXPECT_NE(table.find("L3"), std::string::npos);
  EXPECT_NE(table.find("bucket"), std::string::npos);
  EXPECT_NE(table.find("residual"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

}  // namespace
}  // namespace trilist::obs
