#include <gtest/gtest.h>

#include <string>

#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"

/// \file paper_values_test.cpp
/// Regression tests against numbers printed in the paper itself. These
/// are the strongest reproduction evidence in the suite: every value below
/// appears verbatim in PODS'17 Tables 5-8, and our independently
/// implemented models must land on it.

namespace trilist {
namespace {

// ---------------------------------------------------------------------------
// Table 5: exact discrete model (50), T1 + theta_D, alpha=1.5, beta=15,
// linear truncation. Paper column "F(x) in (50), value".
// ---------------------------------------------------------------------------

struct Table5Row {
  double n;
  double value;
};

class Table5Test : public ::testing::TestWithParam<Table5Row> {};

TEST_P(Table5Test, ExactModelMatchesPaperValue) {
  const Table5Row row = GetParam();
  const DiscretePareto f(1.5, 15.0);
  const auto t_n = static_cast<int64_t>(row.n) - 1;
  const TruncatedDistribution fn(f, t_n);
  const double value =
      ExactDiscreteCost(fn, t_n, Method::kT1, XiMap::Descending());
  // The paper prints two decimals.
  EXPECT_NEAR(value, row.value, 0.011) << "n=" << row.n;
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table5Test,
                         ::testing::Values(Table5Row{1e3, 142.85},
                                           Table5Row{1e4, 241.15},
                                           Table5Row{1e7, 346.92}));

TEST(Table5Test, Algorithm2MatchesPaperAtAstronomicalSizes) {
  // Paper: Algorithm 2 gives 354.94 at 1e9, 355.79 at 1e10, 356.26 at
  // 1e13, 356.28 at 1e14 and 1e17 (eps = 1e-5).
  const DiscretePareto f(1.5, 15.0);
  const struct {
    double n;
    double value;
  } rows[] = {{1e9, 354.94}, {1e10, 355.79}, {1e13, 356.26},
              {1e17, 356.28}};
  for (const auto& row : rows) {
    const auto t_n = static_cast<int64_t>(row.n) - 1;
    const TruncatedDistribution fn(f, t_n);
    const double value = FastDiscreteCost(fn, t_n, Method::kT1,
                                          XiMap::Descending(),
                                          WeightFn::Identity(), 1e-5);
    // Algorithm 2's epsilon-compression error differs slightly by block
    // construction details; allow 0.05 absolute on ~356.
    EXPECT_NEAR(value, row.value, 0.05) << "n=" << row.n;
  }
}

// ---------------------------------------------------------------------------
// Asymptotic limits printed in Tables 6-8 (the "inf" rows).
// ---------------------------------------------------------------------------

struct LimitRow {
  double alpha;
  Method method;
  const char* map;  // "D" or "RR"
  double value;
};

class PaperLimitTest : public ::testing::TestWithParam<LimitRow> {};

TEST_P(PaperLimitTest, Algorithm2ReproducesPaperLimit) {
  const LimitRow row = GetParam();
  const DiscretePareto f = DiscretePareto::PaperParameterization(row.alpha);
  const XiMap xi = std::string(row.map) == "D" ? XiMap::Descending()
                                               : XiMap::RoundRobin();
  const double limit = AsymptoticCost(f, row.method, xi);
  // Paper prints one decimal.
  EXPECT_NEAR(limit, row.value, row.value * 2e-4 + 0.06)
      << "alpha=" << row.alpha << " " << MethodName(row.method);
}

INSTANTIATE_TEST_SUITE_P(
    PaperLimits, PaperLimitTest,
    ::testing::Values(
        LimitRow{1.5, Method::kT1, "D", 356.3},    // Tables 6 and 9
        LimitRow{1.7, Method::kT2, "D", 1307.6},   // Tables 7 and 10
        LimitRow{1.7, Method::kT2, "RR", 770.4},   // Tables 7 and 10
        LimitRow{2.1, Method::kT1, "D", 181.5},    // Table 8
        LimitRow{2.1, Method::kT2, "RR", 384.3})); // Table 8

// ---------------------------------------------------------------------------
// Model values quoted in Tables 6-8 at finite n (the "(50)" columns).
// ---------------------------------------------------------------------------

struct FiniteModelRow {
  double alpha;
  TruncationKind trunc;
  double n;
  Method method;
  const char* map;
  double value;
};

class FiniteModelTest : public ::testing::TestWithParam<FiniteModelRow> {};

TEST_P(FiniteModelTest, Eq50MatchesPaperColumn) {
  const FiniteModelRow row = GetParam();
  const DiscretePareto f = DiscretePareto::PaperParameterization(row.alpha);
  const int64_t t_n = TruncationPoint(row.trunc,
                                      static_cast<int64_t>(row.n));
  const TruncatedDistribution fn(f, t_n);
  const XiMap xi = std::string(row.map) == "D" ? XiMap::Descending()
                   : std::string(row.map) == "A" ? XiMap::Ascending()
                                                 : XiMap::RoundRobin();
  const double value = ExactDiscreteCost(fn, t_n, row.method, xi);
  // One documented anomaly: the paper's Table 6 T1+theta_A cell at
  // n = 1e4 (155.6) sits ~2% below the literal Eq. (50) evaluation
  // (158.8); it is consistent with evaluating J exclusively of the
  // node's own weight, a tie-handling detail the ascending order is
  // uniquely sensitive to at coarse truncation (t_n = 100). All other
  // published cells match the literal formula to print precision, so we
  // keep the literal convention and widen only this row's tolerance.
  const bool anomaly_row = row.alpha == 1.5 &&
                           row.trunc == TruncationKind::kRoot &&
                           std::string(row.map) == "A";
  const double tolerance =
      anomaly_row ? row.value * 0.025 : row.value * 2e-3 + 0.1;
  EXPECT_NEAR(value, row.value, tolerance)
      << "alpha=" << row.alpha << " n=" << row.n;
}

INSTANTIATE_TEST_SUITE_P(
    PaperFiniteModels, FiniteModelTest,
    ::testing::Values(
        // Table 6 (alpha=1.5, root): T1+A 155.6 @1e4, T1+D 39.3 @1e4,
        // 142.9 @1e6.
        FiniteModelRow{1.5, TruncationKind::kRoot, 1e4, Method::kT1, "A",
                       155.6},
        FiniteModelRow{1.5, TruncationKind::kRoot, 1e4, Method::kT1, "D",
                       39.3},
        FiniteModelRow{1.5, TruncationKind::kRoot, 1e6, Method::kT1, "D",
                       142.9},
        // Table 7 (alpha=1.7, root): T2+D 103.7 @1e4, T2+RR 75.8 @1e4.
        FiniteModelRow{1.7, TruncationKind::kRoot, 1e4, Method::kT2, "D",
                       103.7},
        FiniteModelRow{1.7, TruncationKind::kRoot, 1e4, Method::kT2, "RR",
                       75.8},
        // Table 8 (alpha=2.1, linear): T1+D 179.3 @1e4, T2+RR 384.2 @1e6.
        FiniteModelRow{2.1, TruncationKind::kLinear, 1e4, Method::kT1, "D",
                       179.3},
        FiniteModelRow{2.1, TruncationKind::kLinear, 1e6, Method::kT2,
                       "RR", 384.2},
        // Table 9 (alpha=1.5, linear): T1+D 241.1 @1e4, T1+A 6452 @1e4.
        FiniteModelRow{1.5, TruncationKind::kLinear, 1e4, Method::kT1, "D",
                       241.1},
        FiniteModelRow{1.5, TruncationKind::kLinear, 1e4, Method::kT1, "A",
                       6452.0},
        // Table 10 (alpha=1.7, linear): T2+D 854.4 @1e4, T2+RR 532.6 @1e4.
        FiniteModelRow{1.7, TruncationKind::kLinear, 1e4, Method::kT2, "D",
                       854.4},
        FiniteModelRow{1.7, TruncationKind::kLinear, 1e4, Method::kT2,
                       "RR", 532.6}));

}  // namespace
}  // namespace trilist
