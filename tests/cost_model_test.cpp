#include "src/cost/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/algo/cost.h"
#include "src/core/out_degree_model.h"
#include "src/order/named_orders.h"
#include "src/order/split.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

std::vector<int64_t> SkewedDegrees(size_t n) {
  std::vector<int64_t> degrees;
  degrees.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    degrees.push_back(1 + static_cast<int64_t>(i * i) / 64);
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

TEST(CostModelTest, OpsMatchSequenceConditionalCost) {
  const std::vector<int64_t> degrees = SkewedDegrees(128);
  const size_t n = degrees.size();
  const cost::CostModel model(degrees);
  for (const Method m : FundamentalMethods()) {
    for (const PermutationKind kind :
         {PermutationKind::kAscending, PermutationKind::kDescending,
          PermutationKind::kRoundRobin,
          PermutationKind::kComplementaryRoundRobin}) {
      Rng rng(0);
      const Permutation theta = MakePermutation(kind, n, &rng);
      EXPECT_DOUBLE_EQ(
          model.PredictedOps({kind, 0}, m),
          static_cast<double>(n) * SequenceConditionalCost(degrees, theta, m))
          << PermutationKindName(kind) << " " << MethodName(m);
    }
    // The split order prices through its tailored positional permutation.
    EXPECT_DOUBLE_EQ(model.PredictedOps({PermutationKind::kSplit, 0}, m),
                     static_cast<double>(n) *
                         SequenceConditionalCost(
                             degrees, TailoredSplitPermutation(degrees), m))
        << MethodName(m);
  }
}

TEST(CostModelTest, GraphDependentOrdersPriceViaDescendingProxy) {
  const cost::CostModel model(SkewedDegrees(64));
  for (const Method m : FundamentalMethods()) {
    const double d = model.PredictedOps({PermutationKind::kDescending, 0}, m);
    EXPECT_DOUBLE_EQ(model.PredictedOps({PermutationKind::kDegenerate, 0}, m),
                     d);
    EXPECT_DOUBLE_EQ(model.PredictedOps({PermutationKind::kAot, 0}, m), d);
  }
}

TEST(CostModelTest, UniformPricingIsSeedDeterministic) {
  const std::vector<int64_t> degrees = SkewedDegrees(64);
  const cost::CostModel model(degrees);
  const OrientSpec u7{PermutationKind::kUniform, 7};
  const double first = model.PredictedOps(u7, Method::kE1);
  EXPECT_DOUBLE_EQ(model.PredictedOps(u7, Method::kE1), first);
  // The seed is part of the pricing identity.
  Rng rng(7);
  const Permutation theta = UniformPermutation(degrees.size(), &rng);
  EXPECT_DOUBLE_EQ(first,
                   static_cast<double>(degrees.size()) *
                       SequenceConditionalCost(degrees, theta, Method::kE1));
}

TEST(CostModelTest, FamilyWeightsFollowTable3) {
  const cost::CostModel model(SkewedDegrees(32));
  const double w = model.params().vertex_op_weight;
  EXPECT_DOUBLE_EQ(model.FamilyWeight(Method::kT1), w);
  EXPECT_DOUBLE_EQ(model.FamilyWeight(Method::kE1),
                   model.params().scan_op_weight);
  EXPECT_DOUBLE_EQ(model.FamilyWeight(Method::kL1),
                   model.params().lookup_op_weight);
}

TEST(CostModelTest, BackendSpeedupDividesOnlyScanningIterators) {
  cost::CostModelParams params;
  params.simd_speedup = 4.0;  // pin so the test is host-independent
  const cost::CostModel model(SkewedDegrees(64), params);
  const OrientSpec spec{PermutationKind::kDescending, 0};

  EXPECT_DOUBLE_EQ(model.BackendSpeedup(IntersectBackend::kMerge), 1.0);
  EXPECT_DOUBLE_EQ(model.BackendSpeedup(IntersectBackend::kSimd), 4.0);
  EXPECT_DOUBLE_EQ(model.BackendSpeedup(IntersectBackend::kBitmap), 2.0);

  const double sei_merge =
      model.PredictedCost(spec, Method::kE1, IntersectBackend::kMerge);
  EXPECT_DOUBLE_EQ(
      model.PredictedCost(spec, Method::kE1, IntersectBackend::kSimd),
      sei_merge / 4.0);
  EXPECT_DOUBLE_EQ(
      model.PredictedCost(spec, Method::kE1, IntersectBackend::kBitmap),
      sei_merge / 2.0);

  // Vertex and lookup iterators never touch the intersection loop.
  for (const Method m : {Method::kT1, Method::kL1}) {
    EXPECT_DOUBLE_EQ(
        model.PredictedCost(spec, m, IntersectBackend::kSimd),
        model.PredictedCost(spec, m, IntersectBackend::kMerge))
        << MethodName(m);
  }
}

TEST(CostModelTest, TotalCostIsTheSumOverMethods) {
  const cost::CostModel model(SkewedDegrees(64));
  const OrientSpec spec{PermutationKind::kRoundRobin, 0};
  const std::vector<Method> methods = {Method::kT1, Method::kE1, Method::kE4};
  double sum = 0;
  for (const Method m : methods) {
    sum += model.PredictedCost(spec, m, IntersectBackend::kMerge);
  }
  EXPECT_DOUBLE_EQ(
      model.PredictedTotalCost(spec, methods, IntersectBackend::kMerge), sum);
}

TEST(CostModelTest, WeightedCostMatchesPredictionCurrency) {
  // A measured op count weighted through WeightedCost must land in the
  // same currency as PredictedCost: ops * family weight / SEI speedup.
  cost::CostModelParams params;
  params.simd_speedup = 8.0;
  const cost::CostModel model(SkewedDegrees(32), params);
  EXPECT_DOUBLE_EQ(model.WeightedCost(100.0, Method::kT1,
                                      IntersectBackend::kSimd),
                   100.0 * params.vertex_op_weight);
  EXPECT_DOUBLE_EQ(model.WeightedCost(100.0, Method::kE1,
                                      IntersectBackend::kSimd),
                   100.0 / 8.0);
  EXPECT_DOUBLE_EQ(model.WeightedCost(100.0, Method::kL1,
                                      IntersectBackend::kBitmap),
                   100.0 * params.lookup_op_weight);
}

TEST(CostModelTest, DerivedSimdSpeedupIsPositive) {
  // simd_speedup <= 0 derives from the host's dispatch level; whatever
  // the host, the derived divisor is at least the scalar 1.
  const cost::CostModel model(SkewedDegrees(16));
  EXPECT_GE(model.params().simd_speedup, 1.0);
  EXPECT_GE(model.BackendSpeedup(IntersectBackend::kSimd), 1.0);
}

}  // namespace
}  // namespace trilist
