#include "src/order/permutation.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/core/h_function.h"
#include "src/order/named_orders.h"
#include "src/order/optimal.h"
#include "src/util/rng.h"

namespace trilist {
namespace {

TEST(PermutationTest, IdentityByDefault) {
  Permutation p(5);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(p(i), i);
  EXPECT_TRUE(p.IsValid());
}

TEST(PermutationTest, InverseComposesToIdentity) {
  Permutation p(std::vector<uint32_t>{2, 0, 3, 1});
  const Permutation inv = p.Inverse();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(inv(p(i)), i);
    EXPECT_EQ(p(inv(i)), i);
  }
}

TEST(PermutationTest, ReverseFormula) {
  Permutation p(std::vector<uint32_t>{2, 0, 3, 1});
  const Permutation rev = p.Reverse();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rev(i), 3 - p(i));
  }
  EXPECT_TRUE(rev.IsValid());
}

TEST(PermutationTest, ComplementFormula) {
  Permutation p(std::vector<uint32_t>{2, 0, 3, 1});
  const Permutation comp = p.Complement();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(comp(i), p(3 - i));
  }
}

TEST(PermutationTest, ReverseAndComplementAreInvolutions) {
  Rng rng(5);
  const Permutation p = UniformPermutation(64, &rng);
  const Permutation rr = p.Reverse().Reverse();
  const Permutation cc = p.Complement().Complement();
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(rr(i), p(i));
    EXPECT_EQ(cc(i), p(i));
  }
}

TEST(PermutationTest, EmptyPermutationIsValidEverywhere) {
  const Permutation p(static_cast<size_t>(0));
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.IsValid());
  EXPECT_EQ(p.Inverse().size(), 0u);
  EXPECT_EQ(p.Reverse().size(), 0u);
  EXPECT_EQ(p.Complement().size(), 0u);
  Rng rng(1);
  for (PermutationKind kind :
       {PermutationKind::kAscending, PermutationKind::kDescending,
        PermutationKind::kRoundRobin,
        PermutationKind::kComplementaryRoundRobin,
        PermutationKind::kUniform}) {
    const Permutation named = MakePermutation(kind, 0, &rng);
    EXPECT_EQ(named.size(), 0u) << PermutationKindName(kind);
    EXPECT_TRUE(named.IsValid()) << PermutationKindName(kind);
  }
}

TEST(PermutationTest, SingletonPermutationIsTheIdentity) {
  const Permutation p(1);
  EXPECT_EQ(p(0), 0u);
  EXPECT_EQ(p.Inverse()(0), 0u);
  EXPECT_EQ(p.Reverse()(0), 0u);
  Rng rng(2);
  for (PermutationKind kind :
       {PermutationKind::kAscending, PermutationKind::kDescending,
        PermutationKind::kRoundRobin,
        PermutationKind::kComplementaryRoundRobin,
        PermutationKind::kUniform}) {
    const Permutation named = MakePermutation(kind, 1, &rng);
    ASSERT_EQ(named.size(), 1u) << PermutationKindName(kind);
    EXPECT_EQ(named(0), 0u) << PermutationKindName(kind);
  }
}

TEST(PermutationTest, IdentityIsItsOwnInverse) {
  const Permutation id = AscendingPermutation(17);
  const Permutation inv = id.Inverse();
  for (size_t i = 0; i < 17; ++i) EXPECT_EQ(inv(i), i);
}

TEST(PermutationTest, InverseOfInverseRoundTrips) {
  Rng rng(11);
  const Permutation p = UniformPermutation(257, &rng);
  const Permutation back = p.Inverse().Inverse();
  ASSERT_EQ(back.size(), p.size());
  for (size_t i = 0; i < p.size(); ++i) EXPECT_EQ(back(i), p(i));
}

TEST(NamedOrdersTest, AscendingDescending) {
  const Permutation asc = AscendingPermutation(6);
  const Permutation desc = DescendingPermutation(6);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(asc(i), i);
    EXPECT_EQ(desc(i), 5 - i);
  }
  // theta_D is the reverse of theta_A.
  const Permutation rev = asc.Reverse();
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(rev(i), desc(i));
}

TEST(NamedOrdersTest, RoundRobinMatchesEq32) {
  // Eq. (32), 1-based: odd i -> ceil((n+i)/2), even i -> floor((n-i)/2)+1.
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 10u, 11u, 100u}) {
    const Permutation rr = RoundRobinPermutation(n);
    ASSERT_TRUE(rr.IsValid()) << n;
    for (size_t j = 0; j < n; ++j) {
      const size_t i = j + 1;
      const size_t expected =
          (i % 2 == 1) ? (n + i + 1) / 2 : (n - i) / 2 + 1;
      EXPECT_EQ(rr(j), expected - 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(NamedOrdersTest, RoundRobinSpreadsLargePositionsToEnds) {
  // The two largest positions (largest degrees) must land on labels
  // 0 or n-1.
  const size_t n = 100;
  const Permutation rr = RoundRobinPermutation(n);
  const uint32_t last = rr(n - 1);
  const uint32_t second_last = rr(n - 2);
  EXPECT_TRUE(last == 0 || last == n - 1);
  EXPECT_TRUE(second_last == 0 || second_last == n - 1);
  EXPECT_NE(last, second_last);
}

TEST(NamedOrdersTest, CrrIsComplementOfRr) {
  const size_t n = 37;
  const Permutation rr = RoundRobinPermutation(n);
  const Permutation crr = ComplementaryRoundRobinPermutation(n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(crr(i), rr(n - 1 - i));
  }
}

TEST(NamedOrdersTest, CrrPutsLargePositionsInMiddle) {
  const size_t n = 101;
  const Permutation crr = ComplementaryRoundRobinPermutation(n);
  const double mid = (n - 1) / 2.0;
  // The largest position maps near the middle...
  EXPECT_LT(std::abs(static_cast<double>(crr(n - 1)) - mid), 2.0);
  // ...and the smallest position maps near an end.
  const double d0 = std::min<double>(crr(0), n - 1 - crr(0));
  EXPECT_LT(d0, 2.0);
}

TEST(NamedOrdersTest, UniformIsValidAndSeeded) {
  Rng rng1(7);
  Rng rng2(7);
  const Permutation a = UniformPermutation(100, &rng1);
  const Permutation b = UniformPermutation(100, &rng2);
  EXPECT_TRUE(a.IsValid());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a(i), b(i));
}

TEST(NamedOrdersTest, UniformCoversAllPositionsEvenly) {
  Rng rng(9);
  const size_t n = 6;
  std::map<uint32_t, int> where_zero_goes;
  const int kTrials = 6000;
  for (int t = 0; t < kTrials; ++t) {
    const Permutation p = UniformPermutation(n, &rng);
    ++where_zero_goes[p(0)];
  }
  for (size_t label = 0; label < n; ++label) {
    EXPECT_NEAR(where_zero_goes[static_cast<uint32_t>(label)],
                kTrials / static_cast<int>(n), 150);
  }
}

TEST(NamedOrdersTest, MakePermutationDispatch) {
  Rng rng(1);
  for (PermutationKind kind :
       {PermutationKind::kAscending, PermutationKind::kDescending,
        PermutationKind::kRoundRobin,
        PermutationKind::kComplementaryRoundRobin,
        PermutationKind::kUniform}) {
    const Permutation p = MakePermutation(kind, 33, &rng);
    EXPECT_TRUE(p.IsValid()) << PermutationKindName(kind);
    EXPECT_EQ(p.size(), 33u);
  }
}

TEST(NamedOrdersTest, KindNames) {
  EXPECT_STREQ(PermutationKindName(PermutationKind::kDescending), "theta_D");
  EXPECT_STREQ(PermutationKindName(PermutationKind::kRoundRobin),
               "theta_RR");
}

// ---------------------------------------------------------------------------
// Algorithm 1 (optimal permutations).
// ---------------------------------------------------------------------------

TEST(OptimalPermutationTest, T1RecoverDescending) {
  // h increasing + r increasing => descending order optimal (Cor. 1).
  const auto h = HOf(Method::kT1);
  const size_t n = 16;
  const Permutation opt = OptimalPermutation(h, /*r_increasing=*/true, n);
  const Permutation desc = DescendingPermutation(n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(opt(i), desc(i)) << i;
}

TEST(OptimalPermutationTest, T3RecoverAscending) {
  const auto h = HOf(Method::kT3);
  const size_t n = 16;
  const Permutation opt = OptimalPermutation(h, true, n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(opt(i), i) << i;
}

TEST(OptimalPermutationTest, T2ProducesRrLikeOrder) {
  // For h = x(1-x) the largest positions must get extreme labels.
  const auto h = HOf(Method::kT2);
  const size_t n = 101;
  const Permutation opt = OptimalPermutation(h, true, n);
  EXPECT_TRUE(opt.IsValid());
  const uint32_t biggest = opt(n - 1);
  EXPECT_TRUE(biggest == 0 || biggest == n - 1) << biggest;
  // Smallest position pairs with the largest h, i.e. a middle label.
  const double mid = (n - 1) / 2.0;
  EXPECT_LT(std::abs(static_cast<double>(opt(0)) - mid), 2.0);
}

TEST(OptimalPermutationTest, E4ProducesCrrLikeOrder) {
  const auto h = HOf(Method::kE4);
  const size_t n = 101;
  const Permutation opt = OptimalPermutation(h, true, n);
  // h of E4 is largest at the ends, so the smallest position takes an end
  // label and the biggest position a middle label.
  const uint32_t smallest = opt(0);
  EXPECT_TRUE(smallest == 0 || smallest == n - 1);
  const double mid = (n - 1) / 2.0;
  EXPECT_LT(std::abs(static_cast<double>(opt(n - 1)) - mid), 2.0);
}

TEST(OptimalPermutationTest, DecreasingRMirrors) {
  const auto h = HOf(Method::kT1);
  const size_t n = 16;
  const Permutation inc = OptimalPermutation(h, true, n);
  const Permutation dec = OptimalPermutation(h, false, n);
  // Opposite monotonicity of r flips the sort order; with strictly
  // monotone h this is exactly the complement relationship on keys.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dec(i), inc(n - 1 - i));
  }
}

TEST(OptimalPermutationTest, WorstIsComplementOfBest) {
  const auto h = HOf(Method::kT2);
  const size_t n = 33;
  const Permutation best = OptimalPermutation(h, true, n);
  const Permutation worst = WorstPermutation(h, true, n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(worst(i), best(n - 1 - i));
  }
}

}  // namespace
}  // namespace trilist
