#include "src/ooc/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace trilist::ooc {
namespace {

/// Drains `sorter` into one vector, asserting every batch is non-empty
/// and internally ascending.
std::vector<uint64_t> DrainAll(ExternalU64Sorter* sorter) {
  std::vector<uint64_t> out;
  const Status st =
      sorter->Drain([&out](std::span<const uint64_t> batch) -> Status {
        EXPECT_FALSE(batch.empty());
        EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
        out.insert(out.end(), batch.begin(), batch.end());
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

/// Reference result: sort + dedupe in RAM.
std::vector<uint64_t> SortedUnique(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(ExternalSortTest, InRamPathSortsAndDedupes) {
  ExternalU64Sorter sorter(::testing::TempDir(), 1 << 20, 1 << 20);
  const std::vector<uint64_t> input = {5, 3, 9, 3, 7, 5, 1, 9, 9};
  ASSERT_TRUE(sorter.AddBatch(input).ok());
  EXPECT_EQ(DrainAll(&sorter), SortedUnique(input));
  EXPECT_EQ(sorter.stats().records_in, 9);
  EXPECT_EQ(sorter.stats().merged_records, 5);
  EXPECT_EQ(sorter.stats().runs, 0) << "small input must not spill";
  EXPECT_EQ(sorter.stats().spilled_bytes, 0);
}

TEST(ExternalSortTest, EmptyInputDrainsEmpty) {
  ExternalU64Sorter sorter(::testing::TempDir(), 1 << 20, 1 << 20);
  bool emitted = false;
  const Status st = sorter.Drain([&](std::span<const uint64_t>) -> Status {
    emitted = true;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(emitted);
  EXPECT_EQ(sorter.stats().merged_records, 0);
}

TEST(ExternalSortTest, SpillingMergeMatchesInRamReference) {
  // Minimum buffers (64 KiB = 8192 records) against 100k records force
  // a dozen-plus spilled runs through the k-way merge.
  ExternalU64Sorter sorter(::testing::TempDir(), 1, 1);
  Rng rng(123);
  std::vector<uint64_t> input;
  input.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    input.push_back(rng.Next() % 40000);  // plenty of duplicates
  }
  for (uint64_t v : input) ASSERT_TRUE(sorter.Add(v).ok());
  EXPECT_EQ(DrainAll(&sorter), SortedUnique(input));
  EXPECT_GT(sorter.stats().runs, 1) << "test must exercise the merge";
  EXPECT_GT(sorter.stats().spilled_bytes, 0);
  EXPECT_EQ(sorter.stats().records_in, 100000);
}

TEST(ExternalSortTest, DuplicatesCollapseAcrossRuns) {
  // Every run holds the same records, so cross-run dedupe (not just
  // within-run) must collapse them to one copy each.
  ExternalU64Sorter sorter(::testing::TempDir(), 1, 1);
  for (int rep = 0; rep < 5; ++rep) {
    for (uint64_t v = 0; v < 20000; ++v) ASSERT_TRUE(sorter.Add(v).ok());
  }
  const std::vector<uint64_t> merged = DrainAll(&sorter);
  ASSERT_EQ(merged.size(), 20000u);
  for (uint64_t v = 0; v < 20000; ++v) EXPECT_EQ(merged[v], v);
  EXPECT_GE(sorter.stats().runs, 5);
}

TEST(ExternalSortTest, AddAfterDrainFails) {
  ExternalU64Sorter sorter(::testing::TempDir(), 1 << 20, 1 << 20);
  ASSERT_TRUE(sorter.Add(1).ok());
  DrainAll(&sorter);
  EXPECT_FALSE(sorter.Add(2).ok());
  EXPECT_FALSE(
      sorter.Drain([](std::span<const uint64_t>) { return Status::OK(); })
          .ok());
}

TEST(ExternalSortTest, BadTmpdirSurfacesOnSpill) {
  ExternalU64Sorter sorter("/nonexistent-trilist-tmpdir", 1, 1);
  Status st = Status::OK();
  // The spill file is created lazily on first overflow; keep adding
  // until the failure surfaces (64 KiB floor = 8192 records + 1).
  for (int i = 0; i <= 8192 && st.ok(); ++i) {
    st = sorter.Add(static_cast<uint64_t>(i));
  }
  EXPECT_FALSE(st.ok());
}

TEST(ExternalSortTest, EmitErrorAbortsDrain) {
  ExternalU64Sorter sorter(::testing::TempDir(), 1 << 20, 1 << 20);
  for (uint64_t v = 0; v < 100; ++v) ASSERT_TRUE(sorter.Add(v).ok());
  const Status st =
      sorter.Drain([](std::span<const uint64_t>) -> Status {
        return Status::Internal("sink rejected batch");
      });
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace trilist::ooc
