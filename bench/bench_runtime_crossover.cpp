/// \file bench_runtime_crossover.cpp
/// The Section 2.4 decision in practice: scanning edge iterators execute
/// more operations than vertex iterators (w_n = cost(E1)/cost(T1) > 1)
/// but each operation is cheaper. On the paper's SIMD hardware the
/// break-even is w_n ~ 95; this bench measures *end-to-end wall time* of
/// T1 vs E1 (and the LEI variant L2) on real generated graphs across
/// alpha, reporting the operation ratio w_n, the time ratio, and which
/// method wins on this machine — connecting Table 3's microbenchmark to
/// the cost model's prediction.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/algo/registry.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/order/pipeline.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

int main() {
  using namespace trilist;
  const size_t n = trilist_bench::PaperScale() ? 1000000 : 200000;
  std::cout << "=== Runtime crossover: T1 vs E1 vs L2 under theta_D "
               "(n=" << n << ") ===\n";

  TablePrinter table({"alpha", "w_n = ops(E1)/ops(T1)", "T1 time", "E1 time",
                      "L2 time", "winner"});
  for (double alpha : {1.5, 1.7, 2.1, 3.0}) {
    Rng rng(trilist_bench::Seed());
    const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
    const TruncatedDistribution fn(
        base, TruncationPoint(TruncationKind::kRoot,
                              static_cast<int64_t>(n)));
    std::vector<int64_t> degrees =
        DegreeSequence::SampleIid(fn, n, &rng).degrees();
    MakeGraphic(&degrees);
    auto graph = GenerateExactDegree(degrees, &rng);
    if (!graph.ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    const OrientedGraph og =
        OrientNamed(*graph, PermutationKind::kDescending);
    const DirectedEdgeSet arcs(og);

    auto timed = [&](Method m) {
      CountingSink sink;
      Timer timer;
      const OpCounts ops = RunMethod(m, og, arcs, &sink);
      return std::make_pair(timer.ElapsedSeconds(),
                            static_cast<double>(ops.PaperCost()));
    };
    const auto [t1_time, t1_ops] = timed(Method::kT1);
    const auto [e1_time, e1_ops] = timed(Method::kE1);
    const auto [l2_time, l2_ops] = timed(Method::kL2);
    (void)l2_ops;
    const double wn = t1_ops > 0 ? e1_ops / t1_ops : 0.0;
    const double best = std::min({t1_time, e1_time, l2_time});
    const char* winner = best == e1_time ? "E1"
                         : best == t1_time ? "T1"
                                           : "L2";
    table.AddRow({FormatNumber(alpha, 1), FormatNumber(wn, 2),
                  FormatNumber(t1_time, 3) + "s",
                  FormatNumber(e1_time, 3) + "s",
                  FormatNumber(l2_time, 3) + "s", winner});
  }
  table.Print(std::cout);
  std::cout << "\nreading: E1 runs w_n times more operations but each "
               "merge step is far cheaper than a hash probe (Table 3); "
               "the winner flips when w_n exceeds this machine's per-op "
               "speed ratio.\n\n";
  return 0;
}
