/// \file bench_runtime_crossover.cpp
/// The Section 2.4 decision in practice: scanning edge iterators execute
/// more operations than vertex iterators (w_n = cost(E1)/cost(T1) > 1)
/// but each operation is cheaper. On the paper's SIMD hardware the
/// break-even is w_n ~ 95; this bench measures *end-to-end wall time* of
/// T1 vs E1 (and the LEI variant L2) on real generated graphs across
/// alpha, reporting the operation ratio w_n, the time ratio, and which
/// method wins on this machine — connecting Table 3's microbenchmark to
/// the cost model's prediction. Each alpha's graph + orientation + runs
/// execute through the shared RunPipeline, which also reuses one
/// orientation across the three methods.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/util/table_printer.h"

int main() {
  using namespace trilist;
  const size_t n = trilist_bench::ScaledN(1000000, 200000);
  std::cout << "=== Runtime crossover: T1 vs E1 vs L2 under theta_D "
               "(n=" << n << ") ===\n";

  TablePrinter table({"alpha", "w_n = ops(E1)/ops(T1)", "T1 time", "E1 time",
                      "L2 time", "winner"});
  for (double alpha : {1.5, 1.7, 2.1, 3.0}) {
    RunSpec spec;
    spec.source = GraphSource::FromGenerator(
        trilist_bench::ParetoSpec(n, alpha, TruncationKind::kRoot));
    spec.methods = {Method::kT1, Method::kE1, Method::kL2};
    spec.seed = trilist_bench::Seed();
    auto report = RunPipeline(spec);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const MethodReport& t1 = report->methods[0];
    const MethodReport& e1 = report->methods[1];
    const MethodReport& l2 = report->methods[2];
    const double t1_ops = static_cast<double>(t1.ops.PaperCost());
    const double wn =
        t1_ops > 0 ? static_cast<double>(e1.ops.PaperCost()) / t1_ops : 0.0;
    const double best = std::min({t1.wall_s, e1.wall_s, l2.wall_s});
    const char* winner = best == e1.wall_s ? "E1"
                         : best == t1.wall_s ? "T1"
                                             : "L2";
    table.AddRow({FormatNumber(alpha, 1), FormatNumber(wn, 2),
                  FormatNumber(t1.wall_s, 3) + "s",
                  FormatNumber(e1.wall_s, 3) + "s",
                  FormatNumber(l2.wall_s, 3) + "s", winner});
  }
  table.Print(std::cout);
  std::cout << "\nreading: E1 runs w_n times more operations but each "
               "merge step is far cheaper than a hash probe (Table 3); "
               "the winner flips when w_n exceeds this machine's per-op "
               "speed ratio.\n\n";
  return 0;
}
