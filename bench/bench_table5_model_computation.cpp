/// \file bench_table5_model_computation.cpp
/// Reproduces Table 5: value and computation time of the three model
/// evaluators for T1 + theta_D at alpha = 1.5, beta = 15, *linear*
/// truncation (t_n = n - 1):
///   * the continuous model Eq. (49) (the paper uses Matlab; we use
///     log-grid quadrature) — converges to ~363.6,
///   * the exact discrete model Eq. (50), O(t_n) — 142.85 at n=1e3 rising
///     to ~356.3, but linear time makes n >= 1e10 impractical,
///   * Algorithm 2 (eps = 1e-5) — same values as (50) to >= 4 digits in
///     O((1 + log eps*t)/eps) time, 1e17 in fractions of a second.
/// The exact model is skipped beyond a size cap (mirroring the paper's
/// "too slow" cells).

#include <cstdint>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/continuous_model.h"
#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

int main() {
  using namespace trilist;
  const double alpha = 1.5;
  const double beta = 15.0;
  const double eps = 1e-5;
  const ContinuousPareto cont(alpha, beta);
  const DiscretePareto disc(alpha, beta);

  // Sizes from the paper; the exact model runs only while affordable.
  const std::vector<double> sizes = {1e3,  1e4,  1e7,  1e8, 1e9,
                                     1e10, 1e12, 1e13, 1e14, 1e17};
  const double exact_cap = trilist_bench::PaperScale() ? 1e9 : 1e7;

  std::cout << "=== Table 5: model value and computation time, T1+theta_D, "
               "alpha=1.5, eps=1e-5, linear truncation ===\n";
  TablePrinter table({"n", "(49) value", "(49) time", "(50) value",
                      "(50) time", "Alg2 value", "Alg2 time"});
  const XiMap xi = XiMap::Descending();
  for (double n : sizes) {
    const auto t_n = static_cast<int64_t>(n) - 1;
    std::vector<std::string> row = {FormatOps(n)};

    Timer timer;
    const double continuous =
        ContinuousCost(cont, static_cast<double>(t_n), Method::kT1, xi);
    row.push_back(FormatNumber(continuous, 2));
    row.push_back(FormatNumber(timer.ElapsedSeconds(), 2) + "s");

    if (n <= exact_cap) {
      const TruncatedDistribution fn(disc, t_n);
      timer.Start();
      const double exact = ExactDiscreteCost(fn, t_n, Method::kT1, xi);
      row.push_back(FormatNumber(exact, 2));
      row.push_back(FormatNumber(timer.ElapsedSeconds(), 2) + "s");
    } else {
      row.push_back("too slow");
      row.push_back("-");
    }

    {
      const TruncatedDistribution fn(disc, t_n);
      timer.Start();
      const double fast = FastDiscreteCost(fn, t_n, Method::kT1, xi,
                                           WeightFn::Identity(), eps);
      row.push_back(FormatNumber(fast, 2));
      row.push_back(FormatNumber(timer.ElapsedSeconds(), 2) + "s");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper values for comparison: (49) 144.86 -> 363.57, "
               "(50)/Alg2 142.85 -> 356.28; Alg2 at 1e17 in ~0.13s\n\n";
  return 0;
}
