/// \file bench_table9_t1_linear.cpp
/// Reproduces Table 9: the Table 6 scenario under *linear* truncation —
/// unconstrained graphs (alpha = 1.5 has infinite variance), where the
/// model over-estimates T1+theta_D by ~10-16% at these sizes and the
/// theta_A column diverges quickly.

#include <iostream>

#include "bench/bench_common.h"
#include "src/sim/report.h"

int main() {
  using namespace trilist;
  PaperTableSpec spec;
  spec.title = "Table 9: T1, alpha=1.5, linear truncation (unconstrained)";
  spec.base.alpha = 1.5;
  spec.base.truncation = TruncationKind::kLinear;
  spec.base.num_sequences = trilist_bench::NumSequences();
  spec.base.graphs_per_sequence = trilist_bench::GraphsPerSequence();
  spec.base.seed = trilist_bench::Seed();
  spec.cells = {{Method::kT1, PermutationKind::kAscending},
                {Method::kT1, PermutationKind::kDescending}};
  spec.sizes = trilist_bench::SimulationSizes();
  RunAndPrintPaperTable(spec, std::cout);
  return 0;
}
