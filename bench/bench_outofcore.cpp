/// \file bench_outofcore.cpp
/// End-to-end acceptance bench of the out-of-core pipeline (src/ooc):
/// converts and T1/E1-counts a Pareto graph at least 4x larger than the
/// memory budget through `trilist_cli` subprocesses, measuring each
/// child's peak RSS with wait4(2). The run FAILS (exit 1) unless
///
///   * the produced `.tlg` is >= 4x the budget,
///   * both the conversion and the paged count stayed under the budget
///     (child ru_maxrss, i.e. the whole process, not just the ledger),
///   * the paged count is bit-identical to an uncapped in-memory run.
///
/// Results (peak RSS, spill bytes, effective GB/s per stage) land in
/// BENCH_outofcore.json. The CLI binary path is injected at build time
/// (TRILIST_CLI_BIN); workdir defaults to TMPDIR or /tmp.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.h"
#include "src/util/json_writer.h"
#include "src/util/timer.h"

namespace {

using trilist::JsonWriter;
using trilist::Timer;

struct ChildResult {
  int exit_code = -1;
  int64_t peak_rss_bytes = 0;
  double wall_s = 0;
  std::string stdout_text;
};

/// fork/exec `argv`, capture stdout, and report the child's peak RSS
/// from wait4's rusage (ru_maxrss is in KiB on Linux).
ChildResult RunChild(const std::vector<std::string>& argv) {
  ChildResult result;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return result;
  Timer timer;
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::perror("execv");
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  char buf[4096];
  ssize_t got;
  while ((got = ::read(pipe_fds[0], buf, sizeof(buf))) > 0) {
    result.stdout_text.append(buf, static_cast<size_t>(got));
  }
  ::close(pipe_fds[0]);
  int status = 0;
  struct rusage usage = {};
  if (::wait4(pid, &status, 0, &usage) == pid) {
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    result.peak_rss_bytes = static_cast<int64_t>(usage.ru_maxrss) * 1024;
  }
  result.wall_s = timer.ElapsedSeconds();
  return result;
}

int64_t FileSize(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

/// Pulls `"key": <integer>` out of a JSON/text blob (no nesting
/// awareness needed: the keys probed are unique in their documents).
int64_t ExtractInt(const std::string& text, const std::string& key) {
  const size_t at = text.find("\"" + key + "\":");
  if (at == std::string::npos) return -1;
  return std::strtoll(text.c_str() + at + key.size() + 3, nullptr, 10);
}

/// Pulls "triangles N" out of `count` subcommand output.
int64_t ExtractTriangles(const std::string& text) {
  const size_t at = text.find("triangles ");
  if (at == std::string::npos) return -1;
  return std::strtoll(text.c_str() + at + 10, nullptr, 10);
}

double GbPerS(int64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e9 / seconds : 0;
}

}  // namespace

int main() {
  const std::string cli = TRILIST_CLI_BIN;
  const char* tmp = std::getenv("TMPDIR");
  const std::string workdir =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/trilist_bench_ooc";
  ::mkdir(workdir.c_str(), 0755);
  const std::string text_path = workdir + "/graph.txt";
  const std::string tlg_path = workdir + "/graph.tlg";

  const size_t n = trilist_bench::ScaledN(4000000, 1000000);
  const double alpha = 1.5;
  const uint64_t seed = trilist_bench::Seed();

  std::printf("bench_outofcore: generating pareto n=%zu alpha=%.1f\n", n,
              alpha);
  const ChildResult gen = RunChild(
      {cli, "generate", "--n", std::to_string(n), "--alpha", "1.5",
       "--seed", std::to_string(seed), "--out", text_path});
  if (gen.exit_code != 0) {
    std::fprintf(stderr, "generate failed:\n%s\n",
                 gen.stdout_text.c_str());
    return 1;
  }
  const int64_t text_bytes = FileSize(text_path);

  // Budget: a quarter of the projected container, so the acceptance
  // ratio (graph >= 4x budget) holds by construction; verified against
  // the real file size below.
  const ChildResult probe = RunChild(
      {cli, "convert", "--in", text_path, "--out", tlg_path, "--orders",
       "D", "--mem-budget", "1G", "--tmpdir", workdir});
  if (probe.exit_code != 0) {
    std::fprintf(stderr, "probe convert failed:\n%s\n",
                 probe.stdout_text.c_str());
    return 1;
  }
  const int64_t tlg_bytes = FileSize(tlg_path);
  const int64_t budget = tlg_bytes / 4;
  const std::string budget_flag = std::to_string(budget);
  std::printf("  text %" PRId64 " B, tlg %" PRId64
              " B -> budget %" PRId64 " B\n",
              text_bytes, tlg_bytes, budget);

  // Measured conversion under the real budget.
  const ChildResult convert = RunChild(
      {cli, "convert", "--in", text_path, "--out", tlg_path, "--orders",
       "D", "--mem-budget", budget_flag, "--tmpdir", workdir, "--report",
       "json"});
  if (convert.exit_code != 0) {
    std::fprintf(stderr, "budgeted convert failed:\n%s\n",
                 convert.stdout_text.c_str());
    return 1;
  }
  const int64_t spill_bytes =
      ExtractInt(convert.stdout_text, "spill_bytes");
  const int64_t num_edges = ExtractInt(convert.stdout_text, "num_edges");

  // Paged count under the budget vs the uncapped in-memory reference.
  const ChildResult paged = RunChild(
      {cli, "count", "--in", tlg_path, "--method", "E1", "--order", "D",
       "--mem-budget", budget_flag});
  const ChildResult reference = RunChild(
      {cli, "count", "--in", tlg_path, "--method", "E1", "--order", "D"});
  if (paged.exit_code != 0 || reference.exit_code != 0) {
    std::fprintf(stderr, "count failed:\npaged:\n%s\nreference:\n%s\n",
                 paged.stdout_text.c_str(),
                 reference.stdout_text.c_str());
    return 1;
  }
  const int64_t paged_triangles = ExtractTriangles(paged.stdout_text);
  const int64_t reference_triangles =
      ExtractTriangles(reference.stdout_text);

  std::printf("  convert: peak RSS %" PRId64 " B, %.2fs (%.2f GB/s in)\n",
              convert.peak_rss_bytes, convert.wall_s,
              GbPerS(text_bytes, convert.wall_s));
  std::printf("  paged count: %" PRId64 " triangles, peak RSS %" PRId64
              " B, %.2fs (%.2f GB/s)\n",
              paged_triangles, paged.peak_rss_bytes, paged.wall_s,
              GbPerS(tlg_bytes, paged.wall_s));
  std::printf("  reference count: %" PRId64 " triangles, peak RSS %" PRId64
              " B\n",
              reference_triangles, reference.peak_rss_bytes);

  bool ok = true;
  if (tlg_bytes < 4 * budget) {
    std::fprintf(stderr, "FAIL: graph (%" PRId64
                         " B) is not >= 4x budget (%" PRId64 " B)\n",
                 tlg_bytes, budget);
    ok = false;
  }
  if (convert.peak_rss_bytes >= budget) {
    std::fprintf(stderr, "FAIL: convert RSS %" PRId64
                         " B >= budget %" PRId64 " B\n",
                 convert.peak_rss_bytes, budget);
    ok = false;
  }
  if (paged.peak_rss_bytes >= budget) {
    std::fprintf(stderr, "FAIL: paged count RSS %" PRId64
                         " B >= budget %" PRId64 " B\n",
                 paged.peak_rss_bytes, budget);
    ok = false;
  }
  if (paged_triangles < 0 || paged_triangles != reference_triangles) {
    std::fprintf(stderr, "FAIL: paged triangles %" PRId64
                         " != reference %" PRId64 "\n",
                 paged_triangles, reference_triangles);
    ok = false;
  }
  if (spill_bytes <= 0) {
    std::fprintf(stderr, "FAIL: conversion did not spill "
                         "(spill_bytes=%" PRId64 ")\n",
                 spill_bytes);
    ok = false;
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("schema", "trilist.bench_outofcore");
  w.Field("schema_version", 1);
  w.Key("params");
  w.BeginObject();
  w.Field("n", static_cast<uint64_t>(n));
  w.FieldDouble("alpha", alpha);
  w.Field("seed", seed);
  w.Field("budget_bytes", budget);
  w.Field("text_bytes", text_bytes);
  w.Field("tlg_bytes", tlg_bytes);
  w.Field("num_edges", num_edges);
  w.EndObject();
  w.Key("convert");
  w.BeginObject();
  w.Field("peak_rss_bytes", convert.peak_rss_bytes);
  w.FieldDouble("wall_s", convert.wall_s);
  w.Field("spill_bytes", spill_bytes);
  w.FieldDouble("input_gb_per_s", GbPerS(text_bytes, convert.wall_s), 3);
  w.EndObject();
  w.Key("count_paged");
  w.BeginObject();
  w.Field("triangles", paged_triangles);
  w.Field("peak_rss_bytes", paged.peak_rss_bytes);
  w.FieldDouble("wall_s", paged.wall_s);
  w.FieldDouble("graph_gb_per_s", GbPerS(tlg_bytes, paged.wall_s), 3);
  w.EndObject();
  w.Key("count_reference");
  w.BeginObject();
  w.Field("triangles", reference_triangles);
  w.Field("peak_rss_bytes", reference.peak_rss_bytes);
  w.EndObject();
  w.Field("passed", ok);
  w.EndObject();
  const std::string json = std::move(w).Finish();

  const std::string out_path =
      trilist_bench::JsonPath("BENCH_outofcore.json");
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  ::unlink(text_path.c_str());
  ::unlink(tlg_path.c_str());
  return ok ? 0 : 1;
}
