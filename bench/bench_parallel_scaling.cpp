/// \file bench_parallel_scaling.cpp
/// Strong-scaling curve of the parallel listing engine: wall time and
/// speedup of T1/T2/E1/E4 (plus the orientation pipeline) at 1, 2, 4 and
/// 8 threads on a Pareto configuration-model graph, emitted both as a
/// console table and as machine-readable BENCH_parallel_scaling.json so
/// later performance PRs have a trajectory to regress against.
///
/// Default scale keeps the run under a minute; TRILIST_PAPER_SCALE=1
/// targets the ~1M-edge graph of the acceptance experiment. Override the
/// output path with TRILIST_BENCH_JSON. Speedups are only meaningful up
/// to the machine's hardware concurrency, which is recorded in the JSON.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/algo/parallel_engine.h"
#include "src/algo/registry.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/configuration_model.h"
#include "src/order/pipeline.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace trilist;

struct Sample {
  std::string phase;  // "orient" or a method name
  int threads = 1;
  double wall_s = 0;
  double speedup = 1;
  uint64_t triangles = 0;
  int64_t paper_cost = 0;
};

/// Best-of-`reps` wall time of `body` in seconds.
template <typename Body>
double BestWall(int reps, Body&& body) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    body();
    const double wall = timer.ElapsedSeconds();
    if (best < 0 || wall < best) best = wall;
  }
  return best;
}

}  // namespace

int main() {
  const bool paper = trilist_bench::PaperScale();
  // alpha = 1.7 with linear truncation: heavy Pareto hubs, the regime
  // where degree-aware chunking matters most.
  const double alpha = 1.7;
  const size_t n = paper ? 500000 : 40000;
  const int reps = paper ? 3 : 2;
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  Rng rng(trilist_bench::Seed());
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t_n =
      TruncationPoint(TruncationKind::kLinear, static_cast<int64_t>(n));
  const TruncatedDistribution fn(base, t_n);
  std::vector<int64_t> degrees =
      DegreeSequence::SampleIid(fn, n, &rng).degrees();
  MakeGraphic(&degrees);
  auto graph = ConfigurationModel(degrees, &rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "parallel scaling: Pareto alpha=%.2f configuration model, n=%zu "
      "m=%zu (hardware threads: %d)\n",
      alpha, graph->num_nodes(), graph->num_edges(), HardwareThreads());

  std::vector<Sample> samples;

  // Orientation pipeline scaling.
  double orient_serial = 0;
  for (int threads : thread_counts) {
    const double wall = BestWall(reps, [&] {
      const OrientedGraph og =
          OrientNamed(*graph, PermutationKind::kDescending, nullptr,
                      threads);
      (void)og;
    });
    if (threads == 1) orient_serial = wall;
    samples.push_back({"orient", threads, wall,
                       wall > 0 ? orient_serial / wall : 1.0, 0, 0});
  }

  const OrientedGraph og =
      OrientNamed(*graph, PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og);

  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    double serial_wall = 0;
    for (int threads : thread_counts) {
      Sample s;
      s.phase = MethodName(m);
      s.threads = threads;
      ExecPolicy exec;
      exec.threads = threads;
      s.wall_s = BestWall(reps, [&] {
        CountingSink sink;
        const OpCounts ops = RunMethodParallel(m, og, arcs, &sink, exec);
        s.triangles = sink.count();
        s.paper_cost = ops.PaperCost();
      });
      if (threads == 1) serial_wall = s.wall_s;
      s.speedup = s.wall_s > 0 ? serial_wall / s.wall_s : 1.0;
      samples.push_back(s);
    }
  }

  std::printf("%-8s %8s %12s %9s %14s %16s\n", "phase", "threads",
              "wall_s", "speedup", "triangles", "paper_cost");
  for (const Sample& s : samples) {
    std::printf("%-8s %8d %12.4f %9.2f %14llu %16lld\n", s.phase.c_str(),
                s.threads, s.wall_s, s.speedup,
                static_cast<unsigned long long>(s.triangles),
                static_cast<long long>(s.paper_cost));
  }

  const char* path_env = std::getenv("TRILIST_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_parallel_scaling.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"parallel_scaling\",\n"
               "  \"alpha\": %.2f,\n"
               "  \"n\": %zu,\n"
               "  \"m\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"paper_scale\": %s,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"results\": [\n",
               alpha, graph->num_nodes(), graph->num_edges(),
               static_cast<unsigned long long>(trilist_bench::Seed()),
               paper ? "true" : "false", HardwareThreads());
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"threads\": %d, "
                 "\"wall_s\": %.6f, \"speedup\": %.4f, "
                 "\"triangles\": %llu, \"paper_cost\": %lld}%s\n",
                 s.phase.c_str(), s.threads, s.wall_s, s.speedup,
                 static_cast<unsigned long long>(s.triangles),
                 static_cast<long long>(s.paper_cost),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
