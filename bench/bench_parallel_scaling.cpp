/// \file bench_parallel_scaling.cpp
/// Strong-scaling curve of the parallel listing engine: wall time and
/// speedup of T1/T2/E1/E4 (plus the orientation pipeline) at 1, 2, 4 and
/// 8 threads on a Pareto configuration-model graph, emitted both as a
/// console table and as machine-readable BENCH_parallel_scaling.json so
/// later performance PRs have a trajectory to regress against.
///
/// Default scale keeps the run under a minute; TRILIST_PAPER_SCALE=1
/// targets the ~1M-edge graph of the acceptance experiment. Override the
/// output path with TRILIST_BENCH_JSON. Speedups are only meaningful up
/// to the machine's hardware concurrency, which is recorded in the JSON.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/algo/parallel_engine.h"
#include "src/algo/registry.h"
#include "src/graph/edge_set.h"
#include "src/order/pipeline.h"
#include "src/util/json_writer.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"

namespace {

using namespace trilist;

struct Sample {
  std::string phase;  // "orient" or a method name
  int threads = 1;
  double wall_s = 0;
  double speedup = 1;
  uint64_t triangles = 0;
  int64_t paper_cost = 0;
};

}  // namespace

int main() {
  // alpha = 1.7 with linear truncation: heavy Pareto hubs, the regime
  // where degree-aware chunking matters most.
  const double alpha = 1.7;
  const size_t n = trilist_bench::ScaledN(500000, 40000);
  const int reps = trilist_bench::PaperScale() ? 3 : 2;
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  Rng rng(trilist_bench::Seed());
  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, alpha, TruncationKind::kLinear,
                                GeneratorKind::kConfiguration),
      &rng);
  std::printf(
      "parallel scaling: Pareto alpha=%.2f configuration model, n=%zu "
      "m=%zu (hardware threads: %d)\n",
      alpha, graph.num_nodes(), graph.num_edges(), HardwareThreads());

  std::vector<Sample> samples;

  // Orientation pipeline scaling.
  double orient_serial = 0;
  for (int threads : thread_counts) {
    const double wall = trilist_bench::BestWall(reps, [&] {
      const OrientedGraph og =
          OrientNamed(graph, PermutationKind::kDescending, nullptr,
                      threads);
      (void)og;
    });
    if (threads == 1) orient_serial = wall;
    samples.push_back({"orient", threads, wall,
                       wall > 0 ? orient_serial / wall : 1.0, 0, 0});
  }

  const OrientedGraph og =
      OrientNamed(graph, PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og);

  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    double serial_wall = 0;
    for (int threads : thread_counts) {
      Sample s;
      s.phase = MethodName(m);
      s.threads = threads;
      ExecPolicy exec;
      exec.threads = threads;
      s.wall_s = trilist_bench::BestWall(reps, [&] {
        CountingSink sink;
        const OpCounts ops = RunMethodParallel(m, og, arcs, &sink, exec);
        s.triangles = sink.count();
        s.paper_cost = ops.PaperCost();
      });
      if (threads == 1) serial_wall = s.wall_s;
      s.speedup = s.wall_s > 0 ? serial_wall / s.wall_s : 1.0;
      samples.push_back(s);
    }
  }

  std::printf("%-8s %8s %12s %9s %14s %16s\n", "phase", "threads",
              "wall_s", "speedup", "triangles", "paper_cost");
  for (const Sample& s : samples) {
    std::printf("%-8s %8d %12.4f %9.2f %14llu %16lld\n", s.phase.c_str(),
                s.threads, s.wall_s, s.speedup,
                static_cast<unsigned long long>(s.triangles),
                static_cast<long long>(s.paper_cost));
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "parallel_scaling");
  w.FieldDouble("alpha", alpha, 2);
  w.Field("n", graph.num_nodes());
  w.Field("m", graph.num_edges());
  w.Field("seed", trilist_bench::Seed());
  w.Field("paper_scale", trilist_bench::PaperScale());
  w.Field("hardware_threads", HardwareThreads());
  w.Key("results");
  w.BeginArray();
  for (const Sample& s : samples) {
    w.BeginObject();
    w.Field("phase", s.phase);
    w.Field("threads", s.threads);
    w.FieldDouble("wall_s", s.wall_s);
    w.FieldDouble("speedup", s.speedup, 4);
    w.Field("triangles", s.triangles);
    w.Field("paper_cost", s.paper_cost);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path =
      trilist_bench::JsonPath("BENCH_parallel_scaling.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = std::move(w).Finish();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
