/// \file bench_serve_throughput.cpp
/// Closed-loop load generator against an in-process trilistd
/// (src/serve/server.h): N client threads, each with its own connection,
/// fire queries back-to-back for a fixed duration against a warm
/// catalog. Reports end-to-end latency percentiles (p50/p95/p99), mean
/// queue wait and requests/second per client count, plus a backpressure
/// probe (tiny queue, many clients) showing overload rejections instead
/// of latency collapse.
///
/// The served graph is a `.tlg` container with an embedded descending
/// orientation, so the steady-state request cost is exactly the listing
/// loop — the serving overhead (framing, scheduling, catalog lookups) is
/// what this bench isolates.
///
/// Writes BENCH_serve_throughput.json (TRILIST_BENCH_JSON overrides).
/// Scale knobs: TRILIST_PAPER_SCALE=1 grows the graph and the measured
/// window; TRILIST_SERVE_BENCH_SECONDS overrides the per-point window.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/graph/binfmt.h"
#include "src/graph/io.h"
#include "src/run/runner.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/json_writer.h"
#include "src/util/timer.h"

namespace {

using namespace trilist;
using namespace trilist::serve;

struct LoadPoint {
  int clients = 0;
  uint64_t requests = 0;
  uint64_t rejected = 0;
  double seconds = 0;
  double rps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double mean_queue_wait_ms = 0;
};

double PercentileMs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(latencies->size() - 1) + 0.5);
  return (*latencies)[std::min(index, latencies->size() - 1)] * 1e3;
}

/// Runs `clients` closed-loop connections for `seconds` against a warm
/// server; every thread records per-request latency and queue wait.
LoadPoint RunLoad(const TriangleServer& server, const QueryRequest& request,
                  int clients, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<double> queue_waits(clients, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(clients);

  Timer window;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ServeClient::ConnectUnix(server.unix_path());
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        Timer t;
        auto response = client.ValueOrDie().Query(request);
        if (response.ok()) {
          latencies[c].push_back(t.ElapsedSeconds());
          queue_waits[c] += response->queue_wait_s;
        } else if (client.ValueOrDie().last_failure_was_reply()) {
          ++rejected;  // explicit backpressure, keep hammering
        } else {
          return;  // transport error: stop this client
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double elapsed = window.ElapsedSeconds();

  LoadPoint point;
  point.clients = clients;
  point.seconds = elapsed;
  point.rejected = rejected.load();
  std::vector<double> all;
  double wait_sum = 0;
  for (int c = 0; c < clients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    wait_sum += queue_waits[c];
  }
  point.requests = all.size();
  point.rps = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  point.p50_ms = PercentileMs(&all, 0.50);
  point.p95_ms = PercentileMs(&all, 0.95);
  point.p99_ms = PercentileMs(&all, 0.99);
  point.mean_queue_wait_ms =
      all.empty() ? 0 : wait_sum / static_cast<double>(all.size()) * 1e3;
  return point;
}

}  // namespace

int main() {
  const size_t n = trilist_bench::ScaledN(200000, 20000);
  const double window_s = [] {
    if (const char* v = std::getenv("TRILIST_SERVE_BENCH_SECONDS")) {
      return std::strtod(v, nullptr);
    }
    return trilist_bench::PaperScale() ? 5.0 : 1.0;
  }();

  // Build the served graph: truncated Pareto, written as a `.tlg` with
  // an embedded descending orientation (the daemon's warm steady state).
  Rng rng(trilist_bench::Seed());
  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, 1.7, TruncationKind::kRoot), &rng);
  const std::string tlg_path = "serve_bench_graph.tlg";
  TlgWriteOptions write_options;
  write_options.orientations = {
      OrientSpec{PermutationKind::kDescending, trilist_bench::Seed()}};
  const Status wrote = WriteTlgFile(graph, tlg_path, write_options);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }

  ServerOptions options;
  options.unix_path = "serve_bench.sock";
  ::remove(options.unix_path.c_str());
  options.named_graphs = {{"bench", tlg_path}};
  options.workers = 0;  // all hardware threads
  options.max_queue = 256;
  auto server = TriangleServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  QueryRequest request;
  request.graph = "bench";
  request.orient =
      OrientSpec{PermutationKind::kDescending, trilist_bench::Seed()};
  request.methods = {Method::kE1};

  // Warm the catalog so every measured request is a pure serving+listing
  // round trip, and keep the reference triangle count for validation.
  uint64_t expected_triangles = 0;
  {
    auto warm = ServeClient::ConnectUnix((*server)->unix_path());
    if (!warm.ok()) {
      std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
      return 1;
    }
    auto response = warm.ValueOrDie().Query(request);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 1;
    }
    expected_triangles = response->methods[0].triangles;
  }

  std::printf("# serve throughput: n=%zu m=%zu, window %.1fs, "
              "triangles=%llu\n",
              graph.num_nodes(), graph.num_edges(), window_s,
              static_cast<unsigned long long>(expected_triangles));
  std::printf("%8s %10s %10s %9s %9s %9s %9s %10s\n", "clients", "reqs",
              "rps", "p50_ms", "p95_ms", "p99_ms", "qwait_ms", "rejected");

  std::vector<LoadPoint> points;
  for (const int clients : {1, 2, 4, 8}) {
    const LoadPoint point = RunLoad(**server, request, clients, window_s);
    points.push_back(point);
    std::printf("%8d %10llu %10.1f %9.3f %9.3f %9.3f %9.3f %10llu\n",
                point.clients,
                static_cast<unsigned long long>(point.requests), point.rps,
                point.p50_ms, point.p95_ms, point.p99_ms,
                point.mean_queue_wait_ms,
                static_cast<unsigned long long>(point.rejected));
  }

  // Backpressure probe: a deliberately tiny queue under many clients
  // must shed load via explicit rejections, not latency collapse.
  (*server)->BeginDrain();
  (*server)->Wait();
  ServerOptions tight = options;
  tight.unix_path = "serve_bench_tight.sock";
  ::remove(tight.unix_path.c_str());
  tight.workers = 1;
  tight.max_queue = 2;
  auto tight_server = TriangleServer::Start(tight);
  if (!tight_server.ok()) {
    std::fprintf(stderr, "%s\n", tight_server.status().ToString().c_str());
    return 1;
  }
  const LoadPoint pressured =
      RunLoad(**tight_server, request, 8, window_s * 0.5);
  std::printf("# backpressure probe (1 worker, queue 2, 8 clients): "
              "%llu served, %llu rejected\n",
              static_cast<unsigned long long>(pressured.requests),
              static_cast<unsigned long long>(pressured.rejected));
  const ServerStats tight_stats = (*tight_server)->StatsSnapshot();

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "serve_throughput");
  w.Field("n", static_cast<uint64_t>(graph.num_nodes()));
  w.Field("m", static_cast<uint64_t>(graph.num_edges()));
  w.Field("triangles", expected_triangles);
  w.FieldDouble("window_s", window_s, 3);
  w.Key("points");
  w.BeginArray();
  for (const LoadPoint& point : points) {
    w.BeginObject();
    w.Field("clients", point.clients);
    w.Field("requests", point.requests);
    w.Field("rejected", point.rejected);
    w.FieldDouble("rps", point.rps, 2);
    w.FieldDouble("p50_ms", point.p50_ms, 4);
    w.FieldDouble("p95_ms", point.p95_ms, 4);
    w.FieldDouble("p99_ms", point.p99_ms, 4);
    w.FieldDouble("mean_queue_wait_ms", point.mean_queue_wait_ms, 4);
    w.EndObject();
  }
  w.EndArray();
  w.Key("backpressure");
  w.BeginObject();
  w.Field("clients", pressured.clients);
  w.Field("served", pressured.requests);
  w.Field("rejected", pressured.rejected);
  w.Field("rejected_overload_stat", tight_stats.rejected_overload);
  w.FieldDouble("p99_ms", pressured.p99_ms, 4);
  w.EndObject();
  w.EndObject();

  const std::string json_path =
      trilist_bench::JsonPath("BENCH_serve_throughput.json");
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  const std::string json = std::move(w).Finish();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("# wrote %s\n", json_path.c_str());

  ::remove(tlg_path.c_str());
  return 0;
}
