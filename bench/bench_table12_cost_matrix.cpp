/// \file bench_table12_cost_matrix.cpp
/// Reproduces Table 12 — the full methods x permutations CPU-operation
/// matrix — with a documented substitution: the paper uses the 41M-node /
/// 1.2B-edge Twitter crawl (9.3 GB), which is unavailable here; we build a
/// synthetic heavy-tailed graph from our exact-degree generator instead
/// (see DESIGN.md). Every qualitative conclusion the paper draws from
/// Table 12 concerns the *ordering pattern* of the matrix, which the
/// degree distribution drives:
///   * theta_D is optimal for T1 and E1; theta_RR for T2; theta_CRR for E4,
///   * E4 is nearly permutation-insensitive and far worse than E1's best,
///   * c(E1, theta_D) ~ 2 c(T2, theta_RR),
///   * the degenerate orientation helps only T1 (and only slightly).
/// The bench prints the matrix in the paper's layout (total operations,
/// n * c_n) and then checks those four claims.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "src/order/pipeline.h"
#include "src/sim/cost_measurement.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

int main() {
  using namespace trilist;
  const size_t n = trilist_bench::ScaledN(2000000, 200000);
  const double alpha = 1.7;
  const uint64_t seed = trilist_bench::Seed();
  Rng rng(seed);

  std::cout << "=== Table 12 (substituted graph): CPU operations, 4 "
               "methods x 6 permutations ===\n";
  std::printf(
      "substitution: synthetic exact-degree Pareto graph (n=%zu, "
      "alpha=%.1f, seed=%llu) in place of the Twitter crawl\n",
      n, alpha, static_cast<unsigned long long>(seed));

  Timer timer;
  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, alpha, TruncationKind::kLinear), &rng);
  std::printf("graph: m=%zu edges, generated in %.1fs\n\n",
              graph.num_edges(), timer.ElapsedSeconds());

  const std::vector<Method> methods = FundamentalMethods();
  const PermutationKind kinds[] = {
      PermutationKind::kDescending,
      PermutationKind::kAscending,
      PermutationKind::kRoundRobin,
      PermutationKind::kComplementaryRoundRobin,
      PermutationKind::kUniform,
      PermutationKind::kDegenerate,
  };

  // cost[kind][method] = n * c_n.
  std::map<PermutationKind, std::vector<double>> cost;
  for (PermutationKind kind : kinds) {
    const auto per_node = MeasurePerNodeCosts(graph, methods, kind, &rng);
    auto& row = cost[kind];
    for (double c : per_node) row.push_back(c * static_cast<double>(n));
  }

  TablePrinter table({"", "theta_D", "theta_A", "theta_RR", "theta_CRR",
                      "theta_U", "theta_degen"});
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    std::vector<std::string> row = {MethodName(methods[mi])};
    for (PermutationKind kind : kinds) {
      row.push_back(FormatOps(cost[kind][mi]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Structural checks mirroring the paper's observations.
  auto at = [&](Method m, PermutationKind k) {
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      if (methods[mi] == m) return cost[k][mi];
    }
    return 0.0;
  };
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  std::printf("\nqualitative checks against the paper's reading:\n");
  check(at(Method::kT1, PermutationKind::kDescending) <=
            at(Method::kT1, PermutationKind::kAscending) &&
        at(Method::kT1, PermutationKind::kDescending) <=
            at(Method::kT1, PermutationKind::kRoundRobin) &&
        at(Method::kT1, PermutationKind::kDescending) <=
            at(Method::kT1, PermutationKind::kUniform),
        "theta_D optimal for T1 among named (non-degenerate) orders");
  check(at(Method::kT2, PermutationKind::kRoundRobin) <=
            at(Method::kT2, PermutationKind::kDescending) &&
        at(Method::kT2, PermutationKind::kRoundRobin) <=
            at(Method::kT2, PermutationKind::kUniform),
        "theta_RR optimal for T2");
  check(at(Method::kE1, PermutationKind::kDescending) <=
            at(Method::kE1, PermutationKind::kAscending) &&
        at(Method::kE1, PermutationKind::kDescending) <=
            at(Method::kE1, PermutationKind::kRoundRobin),
        "theta_D optimal for E1");
  check(at(Method::kE4, PermutationKind::kComplementaryRoundRobin) <=
            at(Method::kE4, PermutationKind::kDescending) &&
        at(Method::kE4, PermutationKind::kComplementaryRoundRobin) <=
            at(Method::kE4, PermutationKind::kUniform),
        "theta_CRR optimal for E4");
  {
    const double ratio = at(Method::kE1, PermutationKind::kDescending) /
                         at(Method::kT2, PermutationKind::kRoundRobin);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "c(E1,theta_D) ~ 2x c(T2,theta_RR): ratio %.2f", ratio);
    check(ratio > 1.6 && ratio < 2.4, buf);
  }
  {
    const double worst = at(Method::kE4, PermutationKind::kDescending);
    const double best =
        at(Method::kE4, PermutationKind::kComplementaryRoundRobin);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "E4 nearly permutation-insensitive: worst/best %.2f",
                  worst / best);
    check(worst / best < 3.0, buf);
  }
  check(at(Method::kT1, PermutationKind::kDegenerate) <
            1.25 * at(Method::kT1, PermutationKind::kDescending),
        "degenerate orientation competitive for T1 only");
  std::printf("%s\n\n", failures == 0 ? "all checks passed"
                                      : "SOME CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}
