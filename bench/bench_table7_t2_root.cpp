/// \file bench_table7_t2_root.cpp
/// Reproduces Table 7: per-node cost of the vertex iterator T2 under the
/// descending and Round-Robin orders, alpha = 1.7, beta = 21, root
/// truncation — simulation vs Eq. (50), limits 1,307.6 (theta_D) and
/// 770.4 (theta_RR) in the paper.

#include <iostream>

#include "bench/bench_common.h"
#include "src/sim/report.h"

int main() {
  using namespace trilist;
  PaperTableSpec spec;
  spec.title = "Table 7: T2, alpha=1.7, root truncation";
  spec.base.alpha = 1.7;
  spec.base.truncation = TruncationKind::kRoot;
  spec.base.num_sequences = trilist_bench::NumSequences();
  spec.base.graphs_per_sequence = trilist_bench::GraphsPerSequence();
  spec.base.seed = trilist_bench::Seed();
  spec.cells = {{Method::kT2, PermutationKind::kDescending},
                {Method::kT2, PermutationKind::kRoundRobin}};
  spec.sizes = trilist_bench::SimulationSizes();
  RunAndPrintPaperTable(spec, std::cout);
  return 0;
}
