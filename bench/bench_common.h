#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/run/runner.h"
#include "src/util/timer.h"

/// \file bench_common.h
/// Shared knobs and helpers for the bench harness. Every bench runs at a
/// reduced default scale so the full suite finishes in minutes on one
/// core; setting TRILIST_PAPER_SCALE=1 in the environment restores sizes
/// and repetition counts close to the publication (expect hours).
///
/// Graph acquisition goes through the run layer (src/run/runner.h) so the
/// benches sample and realize graphs exactly like `trilist_cli run` and
/// the Section 7 simulation loop — one code path, one RNG discipline.

namespace trilist_bench {

/// True when TRILIST_PAPER_SCALE=1.
inline bool PaperScale() {
  const char* v = std::getenv("TRILIST_PAPER_SCALE");
  return v != nullptr && v[0] == '1';
}

/// Graph size by scale tier (publication size vs seconds-long default).
inline size_t ScaledN(size_t paper_n, size_t dev_n) {
  return PaperScale() ? paper_n : dev_n;
}

/// Graph sizes for simulation tables: the paper uses 1e4..1e7.
inline std::vector<size_t> SimulationSizes() {
  if (PaperScale()) return {10000, 100000, 1000000, 10000000};
  return {10000, 30000, 100000};
}

/// Repetitions: the paper averages 100 sequences x 100 graphs.
inline int NumSequences() { return PaperScale() ? 10 : 3; }
inline int GraphsPerSequence() { return PaperScale() ? 10 : 2; }

/// Seed shared by all benches (printed in each table header).
inline uint64_t Seed() {
  const char* v = std::getenv("TRILIST_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 20170514;  // PODS'17
}

/// Output path for a bench's machine-readable results: TRILIST_BENCH_JSON
/// when set, else `default_name` in the working directory.
inline std::string JsonPath(const std::string& default_name) {
  const char* v = std::getenv("TRILIST_BENCH_JSON");
  return v != nullptr ? v : default_name;
}

/// Best-of-`reps` wall time of `body` in seconds.
template <typename Body>
double BestWall(int reps, Body&& body) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    trilist::Timer timer;
    body();
    const double wall = timer.ElapsedSeconds();
    if (best < 0 || wall < best) best = wall;
  }
  return best;
}

/// The standard bench graph family: truncated Pareto with the paper's
/// beta = 30(alpha-1) parameterization, realized by `generator`.
inline trilist::GenerateSpec ParetoSpec(
    size_t n, double alpha, trilist::TruncationKind truncation,
    trilist::GeneratorKind generator = trilist::GeneratorKind::kResidual) {
  trilist::GenerateSpec spec;
  spec.n = n;
  spec.alpha = alpha;
  spec.truncation = truncation;
  spec.generator = generator;
  return spec;
}

/// Samples + realizes `spec` through the shared run-layer path, exiting
/// loudly on failure (benches have no recovery story). Consumes `rng`
/// exactly like the historical inline sampling blocks, so bench output is
/// bit-identical across the migration.
inline trilist::Graph MakeBenchGraph(const trilist::GenerateSpec& spec,
                                     trilist::Rng* rng) {
  auto graph = trilist::GenerateGraph(spec, rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(graph);
}

}  // namespace trilist_bench
