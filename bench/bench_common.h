#pragma once

#include <cstdlib>
#include <string>
#include <vector>

/// \file bench_common.h
/// Shared knobs for the bench harness. Every bench runs at a reduced
/// default scale so the full suite finishes in minutes on one core;
/// setting TRILIST_PAPER_SCALE=1 in the environment restores sizes and
/// repetition counts close to the publication (expect hours).

namespace trilist_bench {

/// True when TRILIST_PAPER_SCALE=1.
inline bool PaperScale() {
  const char* v = std::getenv("TRILIST_PAPER_SCALE");
  return v != nullptr && v[0] == '1';
}

/// Graph sizes for simulation tables: the paper uses 1e4..1e7.
inline std::vector<size_t> SimulationSizes() {
  if (PaperScale()) return {10000, 100000, 1000000, 10000000};
  return {10000, 30000, 100000};
}

/// Repetitions: the paper averages 100 sequences x 100 graphs.
inline int NumSequences() { return PaperScale() ? 10 : 3; }
inline int GraphsPerSequence() { return PaperScale() ? 10 : 2; }

/// Seed shared by all benches (printed in each table header).
inline uint64_t Seed() {
  const char* v = std::getenv("TRILIST_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 20170514;  // PODS'17
}

}  // namespace trilist_bench
