/// \file bench_scaling_laws.cpp
/// Regenerates the asymptotics of Section 6.3 (Eqs. 47-48): below the
/// finiteness thresholds, E[c_n | D_n] under root truncation diverges at
/// rate a_n (T1 + theta_D) / b_n (E1 + theta_D). For a grid of alphas and
/// growing n, the bench prints model cost, the predicted rate, and their
/// ratio — which must flatten as n grows — plus a small simulation column
/// at the sizes where graphs are affordable.

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/fast_model.h"
#include "src/core/scaling.h"
#include "src/degree/truncated.h"
#include "src/degree/pareto.h"
#include "src/sim/experiment.h"
#include "src/util/table_printer.h"

int main() {
  using namespace trilist;
  std::cout << "=== Scaling laws (Eqs. 47-48): cost / predicted rate under "
               "root truncation ===\n";

  const double sim_cap = trilist_bench::PaperScale() ? 1e6 : 1e5;
  for (double alpha : {0.8, 1.2, 4.0 / 3.0, 1.45}) {
    const DiscretePareto base = DiscretePareto::PaperParameterization(
        alpha > 1.0 ? alpha : 1.5);  // beta convention needs alpha > 1
    const DiscretePareto heavy(alpha, alpha > 1.0 ? 30.0 * (alpha - 1.0)
                                                  : 6.0);
    (void)base;
    std::printf("\nalpha = %.3f\n", alpha);
    TablePrinter table({"n", "T1 model", "a_n", "T1/a_n", "E1 model", "b_n",
                        "E1/b_n", "T1 sim"});
    for (double n : {1e4, 1e6, 1e8, 1e10}) {
      const auto t_n = static_cast<int64_t>(std::sqrt(n));
      const TruncatedDistribution fn(heavy, t_n);
      const XiMap xi = XiMap::Descending();
      const double t1 =
          FastDiscreteCost(fn, t_n, Method::kT1, xi, WeightFn::Identity(),
                           1e-5);
      const double e1 =
          FastDiscreteCost(fn, t_n, Method::kE1, xi, WeightFn::Identity(),
                           1e-5);
      // Rates apply below the thresholds; clamp display otherwise.
      const bool t1_diverges = alpha <= 4.0 / 3.0;
      const bool e1_diverges = alpha <= 1.5;
      const double a_n = t1_diverges ? T1ScalingRate(alpha, n) : 1.0;
      const double b_n = e1_diverges ? E1ScalingRate(alpha, n) : 1.0;

      std::string sim = "-";
      if (n <= sim_cap) {
        ExperimentConfig config;
        config.alpha = alpha;
        config.beta = heavy.beta();
        config.truncation = TruncationKind::kRoot;
        config.n = static_cast<size_t>(n);
        config.num_sequences = 2;
        config.graphs_per_sequence = 2;
        config.seed = trilist_bench::Seed();
        const auto results = RunExperiment(
            config, {{Method::kT1, PermutationKind::kDescending}});
        sim = FormatNumber(results[0].sim.Mean(), 1);
      }
      table.AddRow({FormatOps(n), FormatNumber(t1, 1),
                    t1_diverges ? FormatNumber(a_n, 2) : "(finite)",
                    t1_diverges ? FormatNumber(t1 / a_n, 2) : "-",
                    FormatNumber(e1, 1),
                    e1_diverges ? FormatNumber(b_n, 2) : "(finite)",
                    e1_diverges ? FormatNumber(e1 / b_n, 2) : "-", sim});
    }
    table.Print(std::cout);
  }
  std::cout << "\nreading: the ratio columns flatten with n where the "
               "method diverges; for alpha in (4/3, 1.5] only E1 diverges "
               "(T1 column finite) — the Section 6.3 separation.\n\n";
  return 0;
}
