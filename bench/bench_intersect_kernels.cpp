/// \file bench_intersect_kernels.cpp
/// Intersection-backend shootout for the scanning edge iterators: E1 and
/// E4 under merge / gallop / auto / simd / bitmap across degree profiles
/// — a Pareto α sweep (hub-heavy α = 1.3 through near-uniform α = 2.1)
/// plus a preferential-attachment graph round-tripped through the text
/// ingester, standing in for a real ingested dataset. Every backend lists
/// the same triangles (asserted here, proven bit-exactly in
/// intersect_backend_test); what varies is wall time, so the JSON records
/// the per-profile winner as the repo's first intersection-kernel perf
/// baseline (BENCH_intersect_kernels.json).
///
/// Default scale finishes in seconds; TRILIST_PAPER_SCALE=1 approaches
/// publication sizes. Override the output path with TRILIST_BENCH_JSON.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/algo/registry.h"
#include "src/algo/simd/bitmap_index.h"
#include "src/algo/simd/intersect_engine.h"
#include "src/algo/triangle_sink.h"
#include "src/gen/preferential_attachment.h"
#include "src/graph/ingest.h"
#include "src/order/pipeline.h"
#include "src/util/cpu_features.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace trilist;

constexpr IntersectBackend kBackends[] = {
    IntersectBackend::kMerge, IntersectBackend::kGallop,
    IntersectBackend::kAuto, IntersectBackend::kSimd,
    IntersectBackend::kBitmap};

struct Sample {
  std::string profile;
  std::string method;
  std::string backend;
  double wall_s = 0;
  uint64_t triangles = 0;
  int64_t paper_cost = 0;
  int64_t merge_comparisons = 0;
};

struct Profile {
  std::string name;
  Graph graph;
};

/// The "real dataset" stand-in: a Barabasi-Albert graph (degree tail
/// exponent ~3, dominated by a few old hubs) serialized to an edge-list
/// text and re-ingested, so the graph reaches the kernels through the
/// same normalization path an external dataset would.
Graph IngestedPreferentialAttachment(size_t n, size_t m, Rng* rng) {
  auto pa = GeneratePreferentialAttachment(n, m, rng);
  if (!pa.ok()) {
    std::fprintf(stderr, "pa generation failed: %s\n",
                 pa.status().ToString().c_str());
    std::exit(1);
  }
  std::string text;
  text.reserve(pa->num_edges() * 16);
  for (NodeId v = 0; v < static_cast<NodeId>(pa->num_nodes()); ++v) {
    for (const NodeId u : pa->Neighbors(v)) {
      if (v < u) {
        text += std::to_string(v);
        text += ' ';
        text += std::to_string(u);
        text += '\n';
      }
    }
  }
  auto ingested = IngestEdgeList(text);
  if (!ingested.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ingested.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(ingested->graph);
}

}  // namespace

int main() {
  const int reps = trilist_bench::PaperScale() ? 5 : 3;
  const size_t pareto_n = trilist_bench::ScaledN(500000, 30000);
  const size_t pa_n = trilist_bench::ScaledN(300000, 20000);

  Rng rng(trilist_bench::Seed());
  std::vector<Profile> profiles;
  // Hub-heavy to near-uniform: linear truncation at alpha 1.3 keeps the
  // giant hubs (the bitmap/gallop regime), root truncation at 2.1 is the
  // comparable-length regime where plain merge is already near-optimal.
  for (const auto& [alpha, trunc, tag] :
       {std::tuple{1.3, TruncationKind::kLinear, "pareto_a1.3_linear"},
        std::tuple{1.7, TruncationKind::kRoot, "pareto_a1.7_root"},
        std::tuple{2.1, TruncationKind::kRoot, "pareto_a2.1_root"}}) {
    profiles.push_back(
        {tag, trilist_bench::MakeBenchGraph(
                  trilist_bench::ParetoSpec(pareto_n, alpha, trunc,
                                            GeneratorKind::kConfiguration),
                  &rng)});
  }
  profiles.push_back(
      {"pa_m16_ingested", IngestedPreferentialAttachment(pa_n, 16, &rng)});

  std::printf("intersect kernels: simd level %s (detected %s), reps=%d\n",
              SimdLevelName(ActiveSimdLevel()),
              SimdLevelName(DetectedSimdLevel()), reps);
  std::printf("%-20s %-6s %-8s %10s %12s %14s\n", "profile", "method",
              "backend", "wall_ms", "triangles", "merge_cmp");

  std::vector<Sample> samples;
  std::vector<std::string> winners;  // parallel to profile x method
  for (const Profile& p : profiles) {
    Rng orient_rng(7);
    const OrientedGraph og =
        OrientNamed(p.graph, PermutationKind::kDescending, &orient_rng);
    for (const Method method : {Method::kE1, Method::kE4}) {
      uint64_t ref_triangles = 0;
      const Sample* best = nullptr;
      for (const IntersectBackend backend : kBackends) {
        ExecPolicy exec;
        exec.intersect = backend;
        // Build (and price) the bitmap index outside the timed region:
        // one index serves every repetition, as it does in the runner.
        if (backend == IntersectBackend::kBitmap) {
          exec.bitmap_index = simd::EnsureBitmapIndex(exec, og);
        }
        OpCounts ops;
        const double wall = trilist_bench::BestWall(reps, [&] {
          CountingSink sink;
          ops = RunMethod(method, og, &sink, exec);
        });
        Sample s;
        s.profile = p.name;
        s.method = MethodName(method);
        s.backend = IntersectBackendName(backend);
        s.wall_s = wall;
        s.triangles = static_cast<uint64_t>(ops.triangles);
        s.paper_cost = ops.PaperCost();
        s.merge_comparisons = ops.merge_comparisons;
        if (backend == IntersectBackend::kMerge) {
          ref_triangles = s.triangles;
        } else if (s.triangles != ref_triangles) {
          std::fprintf(stderr, "backend %s disagrees on %s/%s\n",
                       s.backend.c_str(), p.name.c_str(),
                       s.method.c_str());
          return 1;
        }
        samples.push_back(s);
        std::printf("%-20s %-6s %-8s %10.2f %12llu %14lld\n",
                    s.profile.c_str(), s.method.c_str(),
                    s.backend.c_str(), wall * 1e3,
                    static_cast<unsigned long long>(s.triangles),
                    static_cast<long long>(s.merge_comparisons));
      }
      for (size_t k = samples.size() - std::size(kBackends);
           k < samples.size(); ++k) {
        if (best == nullptr || samples[k].wall_s < best->wall_s) {
          best = &samples[k];
        }
      }
      std::printf("%-20s %-6s winner: %s (%.2fx vs merge)\n",
                  p.name.c_str(), best->method.c_str(),
                  best->backend.c_str(),
                  samples[samples.size() - std::size(kBackends)].wall_s /
                      best->wall_s);
      winners.push_back(p.name + "/" + best->method + ":" + best->backend);
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "intersect_kernels");
  w.Field("seed", static_cast<int64_t>(trilist_bench::Seed()));
  w.Field("paper_scale", trilist_bench::PaperScale());
  w.Field("reps", reps);
  w.Field("simd_level", SimdLevelName(ActiveSimdLevel()));
  w.Field("simd_detected", SimdLevelName(DetectedSimdLevel()));
  w.Key("samples");
  w.BeginArray();
  for (const Sample& s : samples) {
    w.BeginObject();
    w.Field("profile", s.profile);
    w.Field("method", s.method);
    w.Field("backend", s.backend);
    w.FieldDouble("wall_s", s.wall_s);
    w.Field("triangles", static_cast<int64_t>(s.triangles));
    w.Field("paper_cost", s.paper_cost);
    w.Field("merge_comparisons", s.merge_comparisons);
    w.EndObject();
  }
  w.EndArray();
  w.Key("winners");
  w.BeginArray();
  for (const std::string& win : winners) w.String(win);
  w.EndArray();
  w.EndObject();

  const std::string path =
      trilist_bench::JsonPath("BENCH_intersect_kernels.json");
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = std::move(w).Finish();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
