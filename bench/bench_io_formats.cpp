/// \file bench_io_formats.cpp
/// Loading-path shootout for the on-disk graph subsystem: strict text
/// parse vs tolerant parallel ingest vs `.tlg` mmap load vs `.tlg` load
/// with a cached orientation (which skips OrderPipeline preprocessing
/// entirely). Also verifies — not just times — the container contracts:
/// the mmap-backed graph lists the same triangles with the same operation
/// counts as the text-loaded graph, and the cached oriented CSR is
/// bit-identical to a fresh Orient run.
///
/// Emits BENCH_io_formats.json (override the path with
/// TRILIST_BENCH_JSON). TRILIST_PAPER_SCALE=1 grows the graph to ~1M
/// edges.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/algo/registry.h"
#include "src/graph/binfmt.h"
#include "src/graph/ingest.h"
#include "src/graph/io.h"
#include "src/order/pipeline.h"
#include "src/util/json_writer.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"

namespace {

using namespace trilist;
using trilist_bench::BestWall;

struct Sample {
  std::string phase;
  double wall_s = 0;
  size_t bytes = 0;
};

size_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<size_t>(size) : 0;
}

bool SameOrientedCsr(const OrientedGraph& a, const OrientedGraph& b) {
  const auto eq = [](auto x, auto y) {
    return std::equal(x.begin(), x.end(), y.begin(), y.end());
  };
  return a.num_nodes() == b.num_nodes() && a.num_arcs() == b.num_arcs() &&
         eq(a.RawOutOffsets(), b.RawOutOffsets()) &&
         eq(a.RawOutNeighbors(), b.RawOutNeighbors()) &&
         eq(a.RawInOffsets(), b.RawInOffsets()) &&
         eq(a.RawInNeighbors(), b.RawInNeighbors()) &&
         eq(a.original_of(), b.original_of());
}

}  // namespace

int main() {
  const double alpha = 1.7;
  const size_t n = trilist_bench::ScaledN(500000, 50000);
  const int reps = 3;
  const int threads = std::min(4, HardwareThreads());
  const std::string text_path = "/tmp/trilist_bench_io.txt";
  const std::string tlg_path = "/tmp/trilist_bench_io.tlg";
  const OrientSpec spec{PermutationKind::kDescending, 0};

  Rng rng(trilist_bench::Seed());
  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, alpha, TruncationKind::kRoot,
                                GeneratorKind::kConfiguration),
      &rng);
  if (!WriteEdgeListFile(graph, text_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", text_path.c_str());
    return 1;
  }
  TlgWriteOptions wopts;
  wopts.orientations = {spec};
  wopts.threads = threads;
  if (!WriteTlgFile(graph, tlg_path, wopts).ok()) {
    std::fprintf(stderr, "cannot write %s\n", tlg_path.c_str());
    return 1;
  }
  std::printf(
      "io formats: Pareto alpha=%.2f configuration model, n=%zu m=%zu\n"
      "  text %zu bytes, .tlg %zu bytes (1 cached orientation)\n",
      alpha, graph.num_nodes(), graph.num_edges(), FileSize(text_path),
      FileSize(tlg_path));

  std::vector<Sample> samples;

  samples.push_back({"text_parse_strict",
                     BestWall(reps,
                              [&] {
                                auto r = ReadEdgeListFile(text_path);
                                if (!r.ok()) std::abort();
                              }),
                     FileSize(text_path)});

  samples.push_back(
      {"ingest_tolerant_1t",
       BestWall(reps,
                [&] {
                  auto r = IngestEdgeListFile(text_path);
                  if (!r.ok()) std::abort();
                }),
       FileSize(text_path)});

  if (threads > 1) {
    IngestOptions opts;
    opts.threads = threads;
    samples.push_back(
        {"ingest_tolerant_" + std::to_string(threads) + "t",
         BestWall(reps,
                  [&] {
                    auto r = IngestEdgeListFile(text_path, opts);
                    if (!r.ok()) std::abort();
                  }),
         FileSize(text_path)});
  }

  samples.push_back({"tlg_mmap_load",
                     BestWall(reps,
                              [&] {
                                auto t = TlgFile::Open(tlg_path);
                                if (!t.ok()) std::abort();
                              }),
                     FileSize(tlg_path)});

  {
    TlgLoadOptions lopts;
    lopts.verify_crc = false;
    samples.push_back({"tlg_mmap_load_nocrc",
                       BestWall(reps,
                                [&] {
                                  auto t = TlgFile::Open(tlg_path, lopts);
                                  if (!t.ok()) std::abort();
                                }),
                       FileSize(tlg_path)});
  }

  // Preprocessing skipped vs done fresh: both start from an opened
  // container, one asks for the cached (O, theta), the other reruns the
  // pipeline.
  auto container = TlgFile::Open(tlg_path);
  if (!container.ok()) {
    std::fprintf(stderr, "%s\n", container.status().ToString().c_str());
    return 1;
  }
  samples.push_back(
      {"orient_fresh", BestWall(reps,
                                [&] {
                                  const OrientedGraph og =
                                      OrientWithSpec(container->graph(),
                                                     spec);
                                  (void)og;
                                }),
       0});
  samples.push_back(
      {"orient_cached",
       BestWall(reps,
                [&] {
                  const OrientedGraph* og =
                      container->FindOrientation(spec);
                  if (og == nullptr) std::abort();
                }),
       0});

  // Contract checks (the bench fails loudly rather than reporting
  // numbers for a broken container).
  const OrientedGraph fresh = OrientWithSpec(container->graph(), spec);
  const OrientedGraph* cached = container->FindOrientation(spec);
  if (cached == nullptr || !SameOrientedCsr(fresh, *cached)) {
    std::fprintf(stderr,
                 "FAIL: cached orientation differs from fresh pipeline\n");
    return 1;
  }
  auto text_graph = ReadEdgeListFile(text_path);
  if (!text_graph.ok()) return 1;
  uint64_t text_triangles = 0;
  uint64_t tlg_triangles = 0;
  int64_t text_ops = 0;
  int64_t tlg_ops = 0;
  for (Method m : {Method::kT1, Method::kT2, Method::kE1, Method::kE4}) {
    CountingSink s1;
    CountingSink s2;
    const OrientedGraph og_text = OrientWithSpec(*text_graph, spec);
    text_ops += RunMethod(m, og_text, &s1).PaperCost();
    tlg_ops += RunMethod(m, *cached, &s2).PaperCost();
    text_triangles += s1.count();
    tlg_triangles += s2.count();
  }
  if (text_triangles != tlg_triangles || text_ops != tlg_ops) {
    std::fprintf(stderr, "FAIL: text vs .tlg listing disagrees\n");
    return 1;
  }
  std::printf(
      "  contract: cached orientation bit-identical, T1/T2/E1/E4 "
      "triangles+ops identical (%llu triangles/method-sum)\n",
      static_cast<unsigned long long>(text_triangles));

  std::printf("%-24s %12s %14s\n", "phase", "wall_s", "input_bytes");
  for (const Sample& s : samples) {
    std::printf("%-24s %12.4f %14zu\n", s.phase.c_str(), s.wall_s,
                s.bytes);
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "io_formats");
  w.FieldDouble("alpha", alpha, 2);
  w.Field("n", graph.num_nodes());
  w.Field("m", graph.num_edges());
  w.Field("seed", trilist_bench::Seed());
  w.Field("paper_scale", trilist_bench::PaperScale());
  w.Field("text_bytes", FileSize(text_path));
  w.Field("tlg_bytes", FileSize(tlg_path));
  w.Key("results");
  w.BeginArray();
  for (const Sample& s : samples) {
    w.BeginObject();
    w.Field("phase", s.phase);
    w.FieldDouble("wall_s", s.wall_s);
    w.Field("input_bytes", s.bytes);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path = trilist_bench::JsonPath("BENCH_io_formats.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = std::move(w).Finish();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  std::remove(text_path.c_str());
  std::remove(tlg_path.c_str());
  return 0;
}
