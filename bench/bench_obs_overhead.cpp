/// \file bench_obs_overhead.cpp
/// Proves the observability layer's cost budget on the Table-12 workload:
/// span tracing must stay under 1% listing overhead when disabled and
/// under 5% when enabled (ISSUE acceptance; DESIGN.md section 10).
///
/// Two measurements back the claim:
///  * span-site microbench — per-TraceSpan cost with the tracer disabled
///    (one relaxed atomic load) and enabled (clock reads + ring push),
///    multiplied by the span count one listing sweep actually fires.
///    This is the robust estimate: it is independent of scheduler noise,
///    so CI can enforce it even on a tiny smoke graph.
///  * macro walls — best-of-reps listing wall with the tracer off vs on.
///    Informational on small graphs (jitter swamps sub-ms deltas); the
///    threshold is enforced once the baseline wall exceeds 50 ms.
///
/// The degree-profile pass is a separate opt-in serial sweep, not
/// steady-state overhead; its wall is reported for context only.
///
/// Writes BENCH_obs_overhead.json (TRILIST_BENCH_JSON overrides the
/// path) and exits nonzero when an enforced threshold is violated, so a
/// disabled-path regression fails CI. TRILIST_OBS_BENCH_N overrides the
/// graph size for smoke runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/algo/registry.h"
#include "src/graph/edge_set.h"
#include "src/obs/degree_profile.h"
#include "src/obs/trace.h"
#include "src/order/pipeline.h"
#include "src/util/json_writer.h"
#include "src/util/timer.h"

namespace {

constexpr double kDisabledMaxPct = 1.0;
constexpr double kEnabledMaxPct = 5.0;
/// Macro walls below this are jitter-dominated; enforce via microbench.
constexpr double kMacroEnforceFloorS = 0.05;

/// Per-span cost in nanoseconds for the tracer's current state. Batches
/// of ring capacity with a Clear between keep the enabled path on its
/// fast (non-dropping) branch.
double SpanCostNs(bool enabled) {
  using trilist::obs::Tracer;
  using trilist::obs::TraceSpan;
  const size_t batch = Tracer::kEventsPerThread;
  const int batches = enabled ? 8 : 64;
  double best = -1;
  for (int b = 0; b < batches; ++b) {
    if (enabled) Tracer::Clear();
    trilist::Timer timer;
    for (size_t i = 0; i < batch; ++i) {
      TraceSpan span("micro");
    }
    const double per_span =
        timer.ElapsedSeconds() / static_cast<double>(batch) * 1e9;
    if (best < 0 || per_span < best) best = per_span;
  }
  return best;
}

}  // namespace

int main() {
  using namespace trilist;
  using trilist_bench::ScaledN;

  size_t n = ScaledN(2000000, 200000);
  if (const char* env_n = std::getenv("TRILIST_OBS_BENCH_N")) {
    n = std::strtoull(env_n, nullptr, 10);
  }
  const double alpha = 1.7;
  const uint64_t seed = trilist_bench::Seed();
  const int threads = 2;
  const int reps = 3;
  Rng rng(seed);

  std::printf("=== Observability overhead on the Table-12 workload ===\n");
  std::printf("graph: pareto(n=%zu, alpha=%.1f, linear, seed=%llu)\n", n,
              alpha, static_cast<unsigned long long>(seed));

  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, alpha, TruncationKind::kLinear), &rng);
  const OrientedGraph og =
      OrientNamed(graph, PermutationKind::kDescending, &rng, threads);
  const DirectedEdgeSet arcs(og);
  const std::vector<Method> methods = FundamentalMethods();
  ExecPolicy exec;
  exec.threads = threads;

  const auto list_all = [&] {
    for (Method m : methods) {
      CountingSink sink;
      RunMethod(m, og, arcs, &sink, exec);
    }
  };

  // Macro walls: tracer off, then on (Clear between reps bounds drops).
  obs::Tracer::Disable();
  obs::Tracer::Clear();
  const double off_wall = trilist_bench::BestWall(reps, list_all);

  obs::Tracer::Enable();
  const double on_wall = trilist_bench::BestWall(reps, [&] {
    obs::Tracer::Clear();
    list_all();
  });

  // Spans one sweep fires (per-chunk spans in the parallel engine).
  obs::Tracer::Clear();
  list_all();
  const double spans_per_listing = static_cast<double>(
      obs::Tracer::EventCount() + obs::Tracer::DroppedCount());
  obs::Tracer::Disable();
  obs::Tracer::Clear();

  // Span-site microbench.
  const double disabled_ns = SpanCostNs(/*enabled=*/false);
  obs::Tracer::Enable();
  const double enabled_ns = SpanCostNs(/*enabled=*/true);
  obs::Tracer::Disable();
  obs::Tracer::Clear();

  // Degree-profile pass (opt-in, serial; context only).
  Timer profile_timer;
  for (Method m : methods) {
    obs::NodeOpsRecorder recorder(og.num_nodes());
    CountingSink sink;
    RunMethodProfiled(m, og, arcs, &sink, &recorder);
  }
  const double profile_wall = profile_timer.ElapsedSeconds();

  const double disabled_pct =
      spans_per_listing * disabled_ns * 1e-9 / off_wall * 100.0;
  const double enabled_micro_pct =
      spans_per_listing * enabled_ns * 1e-9 / off_wall * 100.0;
  const double enabled_macro_pct =
      std::max(0.0, (on_wall - off_wall) / off_wall * 100.0);
  const bool macro_enforced = off_wall >= kMacroEnforceFloorS;
  const double enabled_pct =
      macro_enforced ? std::min(enabled_macro_pct, enabled_micro_pct)
                     : enabled_micro_pct;

  std::printf("listing wall (tracer off) : %.4fs\n", off_wall);
  std::printf("listing wall (tracer on)  : %.4fs\n", on_wall);
  std::printf("degree-profile pass       : %.4fs\n", profile_wall);
  std::printf("spans per listing sweep   : %.0f\n", spans_per_listing);
  std::printf("span cost disabled        : %.1f ns\n", disabled_ns);
  std::printf("span cost enabled         : %.1f ns\n", enabled_ns);
  std::printf("overhead disabled         : %.4f%% (budget %.1f%%)\n",
              disabled_pct, kDisabledMaxPct);
  std::printf("overhead enabled          : %.4f%% (budget %.1f%%)%s\n",
              enabled_pct, kEnabledMaxPct,
              macro_enforced ? "" : " [microbench; macro wall too small]");

  const bool pass =
      disabled_pct < kDisabledMaxPct && enabled_pct < kEnabledMaxPct;

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "obs_overhead");
  w.Key("workload");
  w.BeginObject();
  w.Field("n", static_cast<uint64_t>(n));
  w.Field("edges", static_cast<uint64_t>(graph.num_edges()));
  w.FieldDouble("alpha", alpha, 1);
  w.Field("truncation", "linear");
  w.Field("order", "theta_D");
  w.Field("threads", threads);
  w.Field("reps", reps);
  w.Field("seed", seed);
  w.Key("methods");
  w.BeginArray();
  for (Method m : methods) w.String(MethodName(m));
  w.EndArray();
  w.EndObject();
  w.Key("walls");
  w.BeginObject();
  w.FieldDouble("listing_tracer_off_s", off_wall);
  w.FieldDouble("listing_tracer_on_s", on_wall);
  w.FieldDouble("degree_profile_pass_s", profile_wall);
  w.EndObject();
  w.Key("span_site");
  w.BeginObject();
  w.FieldDouble("spans_per_listing", spans_per_listing, 0);
  w.FieldDouble("disabled_ns_per_span", disabled_ns, 2);
  w.FieldDouble("enabled_ns_per_span", enabled_ns, 2);
  w.EndObject();
  w.Key("overhead");
  w.BeginObject();
  w.FieldDouble("disabled_pct", disabled_pct, 4);
  w.FieldDouble("enabled_pct", enabled_pct, 4);
  w.FieldDouble("enabled_macro_pct", enabled_macro_pct, 4);
  w.Field("macro_enforced", macro_enforced);
  w.EndObject();
  w.Key("thresholds");
  w.BeginObject();
  w.FieldDouble("disabled_max_pct", kDisabledMaxPct, 1);
  w.FieldDouble("enabled_max_pct", kEnabledMaxPct, 1);
  w.EndObject();
  w.Field("pass", pass);
  w.EndObject();

  const std::string path =
      trilist_bench::JsonPath("BENCH_obs_overhead.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = std::move(w).Finish();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  if (!pass) {
    std::fprintf(stderr, "FAIL: observability overhead over budget\n");
    return 1;
  }
  return 0;
}
