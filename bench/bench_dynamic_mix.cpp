/// \file bench_dynamic_mix.cpp
/// Mixed dynamic-graph workload against an in-process trilistd: N
/// closed-loop client threads, each drawing ops from a weighted mix
/// (edge-insert batch / edge-delete batch / triangle query) against one
/// served graph, in the style of per-thread weighted op-mix graph
/// benchmarks. Reports mutation throughput (edges/s) and query latency
/// percentiles under churn per mix point — every query pays the epoch
/// invalidation its concurrent writers cause, which is the cost this
/// bench isolates.
///
/// A second section measures the incremental-maintenance win directly on
/// DynGraph (no sockets): the wall time of maintaining the exact count
/// through Apply versus recounting the graph from scratch after every
/// batch — the paper-costed full pass the overlay replaces.
///
/// Writes BENCH_dynamic_mix.json (TRILIST_BENCH_JSON overrides). Scale
/// knobs: TRILIST_PAPER_SCALE=1 grows the graph and window;
/// TRILIST_DYN_BENCH_SECONDS overrides the per-point window.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/dyn/dyn_graph.h"
#include "src/dyn/mutation_log.h"
#include "src/graph/binfmt.h"
#include "src/run/runner.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace trilist;
using namespace trilist::serve;

/// One weighted op mix, percentages summing to 100.
struct Mix {
  const char* name;
  int insert_pct;
  int delete_pct;
  int query_pct;
};

struct MixPoint {
  Mix mix{};
  int threads = 0;
  double seconds = 0;
  uint64_t mutation_batches = 0;
  uint64_t mutations_sent = 0;     ///< edges offered (batch size x batches)
  uint64_t mutations_applied = 0;  ///< non-noop inserts + deletes
  uint64_t queries = 0;
  uint64_t rejected = 0;
  uint64_t final_triangles = 0;
  double mutation_edges_per_s = 0;
  double mutate_p50_ms = 0, mutate_p99_ms = 0;
  double query_p50_ms = 0, query_p99_ms = 0;
};

double PercentileMs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(latencies->size() - 1) + 0.5);
  return (*latencies)[std::min(index, latencies->size() - 1)] * 1e3;
}

/// Runs one mix point: `threads` closed-loop clients for `seconds`.
/// Each thread owns a connection and a deterministic RNG stream; every
/// mutation is a batch of `batch` random edges inside [0, id_range).
MixPoint RunMix(const TriangleServer& server, const std::string& graph,
                const Mix& mix, int threads, double seconds, size_t batch,
                uint32_t id_range) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches{0}, applied{0}, rejected{0};
  std::vector<std::vector<double>> mutate_lat(threads), query_lat(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);

  QueryRequest query;
  query.graph = graph;
  query.orient = OrientSpec{PermutationKind::kDescending, 0};
  query.methods = {Method::kT1};

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto client = ServeClient::ConnectUnix(server.unix_path());
      if (!client.ok()) return;
      Rng rng(trilist_bench::Seed() + 977 * static_cast<uint64_t>(t + 1));
      while (!stop.load(std::memory_order_relaxed)) {
        const int roll = static_cast<int>(rng.NextBounded(100));
        if (roll < mix.query_pct) {
          Timer timer;
          auto response = client.ValueOrDie().Query(query);
          if (response.ok()) {
            query_lat[t].push_back(timer.ElapsedSeconds());
          } else if (client.ValueOrDie().last_failure_was_reply()) {
            ++rejected;
          } else {
            return;
          }
          continue;
        }
        MutateRequest request;
        request.graph = graph;
        request.ops.reserve(batch);
        const bool insert =
            roll < mix.query_pct + mix.insert_pct || mix.delete_pct == 0;
        for (size_t i = 0; i < batch; ++i) {
          dyn::EdgeMutation m;
          m.u = static_cast<NodeId>(rng.NextBounded(id_range));
          do {
            m.v = static_cast<NodeId>(rng.NextBounded(id_range));
          } while (m.v == m.u);
          m.insert = insert;
          request.ops.push_back(m);
        }
        Timer timer;
        auto reply = client.ValueOrDie().Mutate(request);
        if (reply.ok()) {
          mutate_lat[t].push_back(timer.ElapsedSeconds());
          ++batches;
          applied += reply->applied_inserts + reply->applied_deletes;
        } else if (client.ValueOrDie().last_failure_was_reply()) {
          ++rejected;
        } else {
          return;
        }
      }
    });
  }
  Timer window;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : pool) t.join();
  const double elapsed = window.ElapsedSeconds();

  MixPoint point;
  point.mix = mix;
  point.threads = threads;
  point.seconds = elapsed;
  point.mutation_batches = batches.load();
  point.mutations_sent = batches.load() * batch;
  point.mutations_applied = applied.load();
  point.rejected = rejected.load();
  point.mutation_edges_per_s =
      elapsed > 0 ? static_cast<double>(point.mutations_sent) / elapsed : 0;
  std::vector<double> mutates, queries;
  for (int t = 0; t < threads; ++t) {
    mutates.insert(mutates.end(), mutate_lat[t].begin(), mutate_lat[t].end());
    queries.insert(queries.end(), query_lat[t].begin(), query_lat[t].end());
  }
  point.queries = queries.size();
  point.mutate_p50_ms = PercentileMs(&mutates, 0.50);
  point.mutate_p99_ms = PercentileMs(&mutates, 0.99);
  point.query_p50_ms = PercentileMs(&queries, 0.50);
  point.query_p99_ms = PercentileMs(&queries, 0.99);
  return point;
}

}  // namespace

int main() {
  const size_t n = trilist_bench::ScaledN(100000, 10000);
  const double window_s = [] {
    if (const char* v = std::getenv("TRILIST_DYN_BENCH_SECONDS")) {
      return std::strtod(v, nullptr);
    }
    return trilist_bench::PaperScale() ? 5.0 : 1.0;
  }();
  const size_t batch = 64;

  Rng rng(trilist_bench::Seed());
  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, 1.7, TruncationKind::kRoot), &rng);
  const std::string tlg_path = "dynamic_mix_graph.tlg";
  TlgWriteOptions write_options;
  write_options.orientations = {OrientSpec{PermutationKind::kDescending, 0}};
  const Status wrote = WriteTlgFile(graph, tlg_path, write_options);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }

  ServerOptions options;
  options.unix_path = "dynamic_mix.sock";
  ::remove(options.unix_path.c_str());
  options.named_graphs = {{"bench", tlg_path}};
  options.workers = 0;  // all hardware threads
  options.max_queue = 256;
  auto server = TriangleServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  std::printf("# dynamic mix: n=%zu m=%zu, window %.1fs, batch %zu\n",
              graph.num_nodes(), graph.num_edges(), window_s, batch);
  std::printf("%12s %8s %10s %12s %10s %10s %10s %10s %10s\n", "mix",
              "threads", "batches", "edges/s", "mut_p50", "mut_p99",
              "qry_p50", "qry_p99", "rejected");

  // Mix points in the GraphTest style: mutation-heavy, balanced, and
  // read-heavy, all with the same per-thread weighted draw.
  const std::vector<Mix> mixes = {
      {"90i/9d/1q", 90, 9, 1},
      {"45i/45d/10q", 45, 45, 10},
      {"20i/20d/60q", 20, 20, 60},
  };
  const int threads = trilist_bench::PaperScale() ? 8 : 4;
  const uint32_t id_range = static_cast<uint32_t>(graph.num_nodes());

  std::vector<MixPoint> points;
  for (const Mix& mix : mixes) {
    MixPoint point =
        RunMix(**server, "bench", mix, threads, window_s, batch, id_range);
    // Cross-check the maintained count against a served recount: T1 and
    // T2 must agree with each other on the final epoch.
    QueryRequest check;
    check.graph = "bench";
    check.methods = {Method::kT1, Method::kT2};
    auto verify = ServeClient::ConnectUnix((*server)->unix_path());
    if (verify.ok()) {
      auto response = verify.ValueOrDie().Query(check);
      if (response.ok() && response->methods.size() == 2 &&
          response->methods[0].triangles == response->methods[1].triangles) {
        point.final_triangles = response->methods[0].triangles;
      } else {
        std::fprintf(stderr, "final recount mismatch on mix %s\n", mix.name);
        return 1;
      }
    }
    points.push_back(point);
    std::printf("%12s %8d %10llu %12.0f %10.3f %10.3f %10.3f %10.3f %10llu\n",
                mix.name, point.threads,
                static_cast<unsigned long long>(point.mutation_batches),
                point.mutation_edges_per_s, point.mutate_p50_ms,
                point.mutate_p99_ms, point.query_p50_ms, point.query_p99_ms,
                static_cast<unsigned long long>(point.rejected));
  }
  (*server)->BeginDrain();
  (*server)->Wait();

  // Incremental maintenance vs full recount, measured on DynGraph
  // directly: maintaining the count through K batches of Apply versus
  // recounting from scratch after every batch (the cost the overlay
  // replaces). The acceptance bar is a >= 10x win.
  const int recount_batches = trilist_bench::PaperScale() ? 32 : 16;
  dyn::DynGraph dyn_graph = dyn::DynGraph::FromBase(graph);
  Rng mut_rng(trilist_bench::Seed() + 1);
  double apply_wall = 0;
  uint64_t incremental_mutations = 0;
  for (int b = 0; b < recount_batches; ++b) {
    std::vector<dyn::EdgeMutation> ops;
    ops.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      dyn::EdgeMutation m;
      m.u = static_cast<NodeId>(mut_rng.NextBounded(id_range));
      do {
        m.v = static_cast<NodeId>(mut_rng.NextBounded(id_range));
      } while (m.v == m.u);
      m.insert = mut_rng.NextDouble() < 0.7;
      ops.push_back(m);
    }
    Timer timer;
    auto applied_batch = dyn_graph.Apply(ops);
    apply_wall += timer.ElapsedSeconds();
    if (!applied_batch.ok()) {
      std::fprintf(stderr, "%s\n", applied_batch.status().ToString().c_str());
      return 1;
    }
    incremental_mutations += batch;
  }
  const Graph final_graph = dyn_graph.MaterializeGraph();
  Timer recount_timer;
  const uint64_t recounted = dyn::CountTriangles(final_graph);
  const double recount_wall = recount_timer.ElapsedSeconds();
  if (recounted != dyn_graph.triangles()) {
    std::fprintf(stderr, "incremental count diverged: %llu vs %llu\n",
                 static_cast<unsigned long long>(dyn_graph.triangles()),
                 static_cast<unsigned long long>(recounted));
    return 1;
  }
  const double full_equiv = recount_wall * recount_batches;
  const double speedup = apply_wall > 0 ? full_equiv / apply_wall : 0;
  std::printf("# incremental vs recount-per-batch: %d batches x %zu edges, "
              "apply %.4fs vs %.4fs equivalent -> %.1fx\n",
              recount_batches, batch, apply_wall, full_equiv, speedup);

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "dynamic_mix");
  w.Field("n", static_cast<uint64_t>(graph.num_nodes()));
  w.Field("m", static_cast<uint64_t>(graph.num_edges()));
  w.Field("batch_edges", static_cast<uint64_t>(batch));
  w.FieldDouble("window_s", window_s, 3);
  w.Key("points");
  w.BeginArray();
  for (const MixPoint& point : points) {
    w.BeginObject();
    w.Field("mix", point.mix.name);
    w.Field("threads", point.threads);
    w.Field("mutation_batches", point.mutation_batches);
    w.Field("mutations_sent", point.mutations_sent);
    w.Field("mutations_applied", point.mutations_applied);
    w.Field("queries", point.queries);
    w.Field("rejected", point.rejected);
    w.Field("final_triangles", point.final_triangles);
    w.FieldDouble("mutation_edges_per_s", point.mutation_edges_per_s, 1);
    w.FieldDouble("mutate_p50_ms", point.mutate_p50_ms, 4);
    w.FieldDouble("mutate_p99_ms", point.mutate_p99_ms, 4);
    w.FieldDouble("query_p50_ms", point.query_p50_ms, 4);
    w.FieldDouble("query_p99_ms", point.query_p99_ms, 4);
    w.EndObject();
  }
  w.EndArray();
  w.Key("incremental_vs_recount");
  w.BeginObject();
  w.Field("batches", static_cast<uint64_t>(recount_batches));
  w.Field("mutations", incremental_mutations);
  w.Field("triangles", dyn_graph.triangles());
  w.FieldDouble("apply_wall_s", apply_wall, 6);
  w.FieldDouble("one_recount_wall_s", recount_wall, 6);
  w.FieldDouble("recount_per_batch_equiv_wall_s", full_equiv, 6);
  w.FieldDouble("speedup", speedup, 2);
  w.EndObject();
  w.EndObject();

  const std::string json_path =
      trilist_bench::JsonPath("BENCH_dynamic_mix.json");
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  const std::string json = std::move(w).Finish();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("# wrote %s\n", json_path.c_str());

  ::remove(tlg_path.c_str());
  return 0;
}
