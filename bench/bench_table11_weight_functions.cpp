/// \file bench_table11_weight_functions.cpp
/// Reproduces Table 11: relative error of the model Eq. (50) under the
/// weight functions w1(x) = x and w2(x) = min(x, sqrt(mean_m)), at
/// alpha = 1.2 with linear truncation — the asymptotically-infinite-cost
/// regime where w1 builds an error that *grows* with n for T1+theta_D
/// while w2 tracks the simulation's growth rate (Section 7.4).

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/discrete_model.h"
#include "src/core/pmf_table.h"
#include "src/degree/pareto.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

int main() {
  using namespace trilist;
  const double alpha = 1.2;
  std::cout << "=== Table 11: relative model error, alpha=1.2, linear "
               "truncation, w1(x)=x vs w2(x)=min(x, sqrt(m)) ===\n";
  std::cout << "config: seed=" << trilist_bench::Seed()
            << " sequences=" << trilist_bench::NumSequences()
            << " graphs/seq=" << trilist_bench::GraphsPerSequence() << "\n";

  const std::vector<ExperimentCell> cells = {
      {Method::kT1, PermutationKind::kDescending},
      {Method::kT2, PermutationKind::kDescending},
      {Method::kT2, PermutationKind::kRoundRobin},
  };
  std::vector<std::string> headers = {"n"};
  for (const ExperimentCell& cell : cells) {
    headers.push_back(CellLabel(cell) + " w1");
    headers.push_back(CellLabel(cell) + " w2");
  }
  TablePrinter table(headers);

  Timer timer;
  for (size_t n : trilist_bench::SimulationSizes()) {
    ExperimentConfig config;
    config.alpha = alpha;
    config.truncation = TruncationKind::kLinear;
    config.n = n;
    config.num_sequences = trilist_bench::NumSequences();
    config.graphs_per_sequence = trilist_bench::GraphsPerSequence();
    config.seed = trilist_bench::Seed();
    // Simulation (weight-independent) + w1 model come from RunExperiment.
    const auto results = RunExperiment(config, cells);

    // w2 = min(x, sqrt(mean_m)) with mean_m = n E[D_n] / 2.
    const DiscretePareto base(alpha, ResolveBeta(config));
    const int64_t t_n = TruncationPoint(config.truncation,
                                        static_cast<int64_t>(n));
    const TruncatedDistribution fn(base, t_n);
    const double mean_m =
        static_cast<double>(n) * MeanOfTruncated(fn, t_n) / 2.0;
    const WeightFn w2 = WeightFn::Capped(std::sqrt(mean_m));

    std::vector<std::string> row = {FormatCount(n)};
    for (size_t c = 0; c < cells.size(); ++c) {
      const double sim = results[c].sim.Mean();
      const double model_w1 = results[c].model;
      const double model_w2 = ExactDiscreteCost(
          fn, t_n, cells[c].method, XiMap::FromKind(cells[c].order), w2);
      row.push_back(
          FormatPercent(RelativeErrorPercent(model_w1, sim), 1));
      row.push_back(
          FormatPercent(RelativeErrorPercent(model_w2, sim), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "elapsed: " << FormatNumber(timer.ElapsedSeconds(), 2)
            << "s\n(errors are model-vs-sim; the paper reports the same "
               "orientation: w1 grows with n for T1, w2 stays bounded)\n\n";
  return 0;
}
