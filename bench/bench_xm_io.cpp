/// \file bench_xm_io.cpp
/// Extension bench (the paper's Section 8 future work): I/O ledger of
/// partitioned E1/E2 as the RAM budget shrinks. Resident loads total the
/// graph size regardless of K, while streamed traffic costs one full scan
/// per partition — so halving RAM doubles the scan bill. The bench prints
/// the ledger across budgets together with the (unchanged) CPU cost,
/// separating the two axes the paper says must be modeled jointly.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/order/pipeline.h"
#include "src/util/table_printer.h"
#include "src/xm/partitioned.h"

int main() {
  using namespace trilist;
  const size_t n = trilist_bench::ScaledN(500000, 100000);
  Rng rng(trilist_bench::Seed());
  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, 1.7, TruncationKind::kRoot), &rng);
  const OrientedGraph og =
      OrientNamed(graph, PermutationKind::kDescending);
  const auto graph_bytes =
      static_cast<int64_t>(og.num_arcs() * sizeof(NodeId));

  std::cout << "=== Partitioned E1/E2 I/O ledger (extension; n=" << n
            << ", graph "
            << FormatBytes(static_cast<double>(graph_bytes))
            << " of adjacency) ===\n";
  TablePrinter table({"RAM budget", "K", "loaded", "streamed",
                      "total I/O", "E1 CPU ops", "triangles"});
  for (int shift = 0; shift <= 4; ++shift) {
    const int64_t budget = graph_bytes / (int64_t{1} << (2 * shift)) + 1;
    const Partitioning parts = Partitioning::ForMemoryBudget(og, budget);
    CountingSink sink;
    IoStats io;
    const OpCounts ops = RunPartitionedE1(og, parts, &sink, &io);
    table.AddRow({FormatBytes(static_cast<double>(budget)),
                  FormatCount(parts.num_partitions()),
                  FormatBytes(static_cast<double>(io.bytes_loaded)),
                  FormatBytes(static_cast<double>(io.bytes_streamed)),
                  FormatBytes(static_cast<double>(io.TotalBytes())),
                  FormatOps(static_cast<double>(ops.PaperCost())),
                  FormatCount(sink.count())});
  }
  table.Print(std::cout);
  std::cout << "\nreading: CPU cost and triangle output are invariant in "
               "K; only the streaming bill grows as RAM shrinks — the "
               "joint CPU/I-O optimization the paper leaves open.\n\n";
  return 0;
}
