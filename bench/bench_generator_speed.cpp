/// \file bench_generator_speed.cpp
/// Section 7.2 performance claim: the residual-degree generator with an
/// interval (Fenwick) tree realizes a prescribed degree sequence in
/// n log n time — "graphs with 10M nodes ... in several seconds". This
/// bench measures wall time and exactness of the generator across n and
/// alpha, next to the (inexact) configuration model at equal sizes.

#include <cstdio>
#include <iostream>
#include <numeric>

#include "bench/bench_common.h"
#include "src/gen/configuration_model.h"
#include "src/gen/residual_generator.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

int main() {
  using namespace trilist;
  std::cout << "=== Generator speed and exactness (Section 7.2) ===\n";
  TablePrinter table({"n", "alpha", "trunc", "m", "residual time",
                      "unplaced", "config time", "config dropped"});
  std::vector<size_t> sizes = {10000, 100000, 1000000};
  if (trilist_bench::PaperScale()) sizes.push_back(10000000);
  for (size_t n : sizes) {
    for (double alpha : {1.5, 2.1}) {
      for (TruncationKind trunc :
           {TruncationKind::kRoot, TruncationKind::kLinear}) {
        Rng rng(trilist_bench::Seed());
        const std::vector<int64_t> degrees = SampleGraphicDegrees(
            trilist_bench::ParetoSpec(n, alpha, trunc), &rng);

        Timer timer;
        ResidualGenStats stats;
        auto g = GenerateExactDegree(degrees, &rng, &stats);
        const double residual_time = timer.ElapsedSeconds();
        if (!g.ok()) {
          std::fprintf(stderr, "generation failed: %s\n",
                       g.status().ToString().c_str());
          return 1;
        }

        timer.Start();
        ConfigModelStats config_stats;
        auto cg = ConfigurationModel(degrees, &rng, &config_stats);
        const double config_time = timer.ElapsedSeconds();
        if (!cg.ok()) return 1;

        table.AddRow({FormatCount(n), FormatNumber(alpha, 1),
                      TruncationKindName(trunc),
                      FormatCount(g->num_edges()),
                      FormatNumber(residual_time, 2) + "s",
                      FormatCount(static_cast<uint64_t>(
                          stats.unplaced_stubs)),
                      FormatNumber(config_time, 2) + "s",
                      FormatCount(static_cast<uint64_t>(
                          config_stats.TotalDroppedStubs()))});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nreading: the residual generator realizes the sequence "
               "exactly (unplaced <= 1) at n log n cost, while the "
               "configuration model silently drops stubs — visibly so for "
               "heavy tails with linear truncation (the Section 7.2 "
               "motivation).\n\n";
  return 0;
}
