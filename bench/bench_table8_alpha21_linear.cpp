/// \file bench_table8_alpha21_linear.cpp
/// Reproduces Table 8: alpha = 2.1 (finite variance) with *linear*
/// truncation t_n = n-1 — an asymptotically-AMRC scenario where the model
/// converges a bit more slowly at small n; paper limits 181.5
/// (T1+theta_D) and 384.3 (T2+theta_RR).

#include <iostream>

#include "bench/bench_common.h"
#include "src/sim/report.h"

int main() {
  using namespace trilist;
  PaperTableSpec spec;
  spec.title = "Table 8: alpha=2.1, linear truncation";
  spec.base.alpha = 2.1;
  spec.base.truncation = TruncationKind::kLinear;
  spec.base.num_sequences = trilist_bench::NumSequences();
  spec.base.graphs_per_sequence = trilist_bench::GraphsPerSequence();
  spec.base.seed = trilist_bench::Seed();
  spec.cells = {{Method::kT1, PermutationKind::kDescending},
                {Method::kT2, PermutationKind::kRoundRobin}};
  spec.sizes = trilist_bench::SimulationSizes();
  RunAndPrintPaperTable(spec, std::cout);
  return 0;
}
