/// \file bench_table6_t1_root.cpp
/// Reproduces Table 6: per-node cost of the vertex iterator T1 under the
/// ascending and descending orders, alpha = 1.5, beta = 15, *root*
/// truncation (t_n = sqrt(n)), simulation vs the exact discrete model
/// Eq. (50), with the asymptotic limit in the last row.
///
/// Paper reference values (100x100 instances, n = 1e4..1e7):
///   T1+theta_A: sim 159.1 -> 3,089.1 (model within ~2%); limit inf
///   T1+theta_D: sim  40.2 ->   196.9 (model within ~2%); limit 356.3

#include <iostream>

#include "bench/bench_common.h"
#include "src/sim/report.h"

int main() {
  using namespace trilist;
  PaperTableSpec spec;
  spec.title = "Table 6: T1, alpha=1.5, root truncation";
  spec.base.alpha = 1.5;
  spec.base.truncation = TruncationKind::kRoot;
  spec.base.num_sequences = trilist_bench::NumSequences();
  spec.base.graphs_per_sequence = trilist_bench::GraphsPerSequence();
  spec.base.seed = trilist_bench::Seed();
  spec.cells = {{Method::kT1, PermutationKind::kAscending},
                {Method::kT1, PermutationKind::kDescending}};
  spec.sizes = trilist_bench::SimulationSizes();
  RunAndPrintPaperTable(spec, std::cout);
  return 0;
}
