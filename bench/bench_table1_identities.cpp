/// \file bench_table1_identities.cpp
/// Regenerates the content of Tables 1-2 and Figures 2/4 from *measured*
/// operation counts: runs all 18 algorithms on the same oriented graph,
/// prints their per-class operation counts, and verifies every identity
/// the paper states —
///   * vertex-iterator equivalence classes {T1,T4}, {T2,T5}, {T3,T6},
///   * SEI local/remote classes per Table 1 and Prop. 2
///     (c(E1) = c(T1) + c(T2)),
///   * LEI lookup classes per Table 2,
///   * identical triangle counts across all 18.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/algo/registry.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/order/pipeline.h"
#include "src/util/table_printer.h"

int main() {
  using namespace trilist;
  const size_t n = trilist_bench::PaperScale() ? 300000 : 50000;
  Rng rng(trilist_bench::Seed());
  const DiscretePareto base = DiscretePareto::PaperParameterization(1.7);
  const int64_t t_n =
      TruncationPoint(TruncationKind::kRoot, static_cast<int64_t>(n));
  const TruncatedDistribution fn(base, t_n);
  DegreeSequence seq = DegreeSequence::SampleIid(fn, n, &rng);
  std::vector<int64_t> degrees = seq.degrees();
  MakeGraphic(&degrees);
  auto graph = GenerateExactDegree(degrees, &rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const OrientedGraph og =
      OrientNamed(*graph, PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og);

  std::cout << "=== Tables 1-2 / Figures 2,4: measured operation counts of "
               "all 18 methods (n=" << n << ", theta_D) ===\n";
  TablePrinter table({"method", "family", "triangles", "paper-metric ops",
                      "local", "remote", "lookups", "bsearch"});
  std::vector<OpCounts> all(AllMethods().size());
  for (size_t i = 0; i < AllMethods().size(); ++i) {
    const Method m = AllMethods()[i];
    CountingSink sink;
    all[i] = RunMethod(m, og, arcs, &sink);
    const char* family =
        MethodFamily(m) == Family::kVertexIterator        ? "VI"
        : MethodFamily(m) == Family::kScanningEdgeIterator ? "SEI"
                                                           : "LEI";
    table.AddRow({MethodName(m), family, FormatCount(sink.count()),
                  FormatCount(static_cast<uint64_t>(all[i].PaperCost())),
                  FormatCount(static_cast<uint64_t>(all[i].local_scans)),
                  FormatCount(static_cast<uint64_t>(all[i].remote_scans)),
                  FormatCount(static_cast<uint64_t>(all[i].lookups)),
                  FormatCount(static_cast<uint64_t>(all[i].binary_searches))});
  }
  table.Print(std::cout);

  auto ops = [&](Method m) {
    for (size_t i = 0; i < AllMethods().size(); ++i) {
      if (AllMethods()[i] == m) return all[i];
    }
    return OpCounts{};
  };
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  std::printf("\nidentities:\n");
  check(ops(Method::kT1).candidate_checks == ops(Method::kT4).candidate_checks &&
        ops(Method::kT2).candidate_checks == ops(Method::kT5).candidate_checks &&
        ops(Method::kT3).candidate_checks == ops(Method::kT6).candidate_checks,
        "Figure 2 equivalence classes {T1,T4} {T2,T5} {T3,T6}");
  check(ops(Method::kE1).PaperCost() ==
            ops(Method::kT1).candidate_checks +
                ops(Method::kT2).candidate_checks,
        "Proposition 2: c(E1) = c(T1) + c(T2)");
  check(ops(Method::kE1).local_scans == ops(Method::kT1).candidate_checks &&
        ops(Method::kE1).remote_scans == ops(Method::kT2).candidate_checks &&
        ops(Method::kE4).local_scans == ops(Method::kT1).candidate_checks &&
        ops(Method::kE4).remote_scans == ops(Method::kT3).candidate_checks &&
        ops(Method::kE5).local_scans == ops(Method::kT2).candidate_checks &&
        ops(Method::kE6).remote_scans == ops(Method::kT1).candidate_checks,
        "Table 1 local/remote classes");
  check(ops(Method::kL1).lookups == ops(Method::kT2).candidate_checks &&
        ops(Method::kL2).lookups == ops(Method::kT1).candidate_checks &&
        ops(Method::kL4).lookups == ops(Method::kT3).candidate_checks &&
        ops(Method::kL6).lookups == ops(Method::kT1).candidate_checks,
        "Table 2 lookup classes");
  {
    bool same = true;
    for (const OpCounts& c : all) same &= (c.triangles == all[0].triangles);
    check(same, "all 18 methods list the same number of triangles");
  }
  std::printf("%s\n\n", failures == 0 ? "all checks passed"
                                      : "SOME CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}
