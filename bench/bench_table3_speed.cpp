/// \file bench_table3_speed.cpp
/// Reproduces Table 3: single-core speed of the elementary operations
/// behind each family, on long neighbor lists (the best case for
/// intersection):
///   * vertex iterator / LEI — hash-table membership probes,
///   * SEI — sequential two-pointer intersection of sorted lists.
/// The paper measures 19 M/s (hash) vs 1,801 M/s (SIMD intersection) on an
/// i7-3930K; absolute numbers differ on this machine, but the reproduced
/// shape is "scanning is one to two orders of magnitude faster per
/// element", which drives the w_n < speedup decision rule of Section 2.4.
/// Items/sec appear in the benchmark counters.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/flat_hash_set.h"
#include "src/util/rng.h"

namespace {

using namespace trilist;

constexpr size_t kListLength = 1 << 16;
constexpr uint64_t kKeySpace = 1 << 22;

std::vector<uint64_t> RandomKeys(size_t count, Rng* rng) {
  std::vector<uint64_t> keys(count);
  for (auto& k : keys) k = rng->NextBounded(kKeySpace);
  return keys;
}

/// Hash-table probes: the elementary operation of T1-T6 and L1-L6.
void BM_HashProbe(benchmark::State& state) {
  Rng rng(1);
  FlatHashSet64 set(kListLength);
  for (uint64_t k : RandomKeys(kListLength, &rng)) set.Insert(k + 1);
  const std::vector<uint64_t> probes = RandomKeys(kListLength, &rng);
  size_t hits = 0;
  for (auto _ : state) {
    for (uint64_t k : probes) hits += set.Contains(k + 1) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(probes.size()));
}

/// Sorted two-pointer intersection: the elementary operation of E1-E6.
void BM_ScanIntersect(benchmark::State& state) {
  Rng rng(2);
  auto make_sorted = [&](uint64_t salt) {
    Rng local(salt);
    std::vector<NodeId> list(kListLength);
    uint64_t cur = 0;
    for (auto& v : list) {
      cur += 1 + local.NextBounded(60);
      v = static_cast<NodeId>(cur);
    }
    return list;
  };
  const std::vector<NodeId> a = make_sorted(3);
  const std::vector<NodeId> b = make_sorted(4);
  size_t matches = 0;
  for (auto _ : state) {
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++matches;
        ++i;
        ++j;
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size() + b.size()));
}

/// Binary-search membership in sorted lists (the classic alternative when
/// hash tables are unavailable, cf. the Section 2.4 discussion of
/// relabeling-only preprocessing).
void BM_BinarySearchProbe(benchmark::State& state) {
  Rng rng(5);
  std::vector<NodeId> sorted(kListLength);
  uint64_t cur = 0;
  for (auto& v : sorted) {
    cur += 1 + rng.NextBounded(60);
    v = static_cast<NodeId>(cur);
  }
  std::vector<NodeId> probes(kListLength);
  for (auto& p : probes) {
    p = static_cast<NodeId>(rng.NextBounded(cur));
  }
  size_t hits = 0;
  for (auto _ : state) {
    for (NodeId p : probes) {
      hits += std::binary_search(sorted.begin(), sorted.end(), p) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(probes.size()));
}

BENCHMARK(BM_HashProbe);
BENCHMARK(BM_ScanIntersect);
BENCHMARK(BM_BinarySearchProbe);

}  // namespace

BENCHMARK_MAIN();
