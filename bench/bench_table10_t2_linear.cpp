/// \file bench_table10_t2_linear.cpp
/// Reproduces Table 10: T2 under theta_D / theta_RR with alpha = 1.7 and
/// linear truncation. Unconstrained graphs: the paper reports model
/// errors of 71% -> 22% (theta_D) and 50% -> 19% (theta_RR) that decay
/// monotonically with n because the limit is finite.

#include <iostream>

#include "bench/bench_common.h"
#include "src/sim/report.h"

int main() {
  using namespace trilist;
  PaperTableSpec spec;
  spec.title = "Table 10: T2, alpha=1.7, linear truncation (unconstrained)";
  spec.base.alpha = 1.7;
  spec.base.truncation = TruncationKind::kLinear;
  spec.base.num_sequences = trilist_bench::NumSequences();
  spec.base.graphs_per_sequence = trilist_bench::GraphsPerSequence();
  spec.base.seed = trilist_bench::Seed();
  spec.cells = {{Method::kT2, PermutationKind::kDescending},
                {Method::kT2, PermutationKind::kRoundRobin}};
  spec.sizes = trilist_bench::SimulationSizes();
  RunAndPrintPaperTable(spec, std::cout);
  return 0;
}
