/// \file bench_ablation_optimality.cpp
/// Ablation benches for the design choices DESIGN.md calls out:
///
/// A. Permutation optimality (Theorem 3 / Corollaries 1-3): for each
///    fundamental method, measure cost on a real graph under the five
///    named permutations, the OPT permutation built by Algorithm 1, and
///    its complement (the predicted worst case). OPT must match the best
///    named order; the complement must be the worst.
///
/// B. Preprocessing ablation (Section 2.4): full three-step preprocessing
///    vs orientation-without-relabeling (2x penalty on T1-class terms) vs
///    no orientation at all (the classic vertex iterator, 3x vs theta_U
///    and far more vs theta_D).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/algo/baselines.h"
#include "src/algo/edge_iterator.h"
#include "src/algo/registry.h"
#include "src/core/h_function.h"
#include "src/order/optimal.h"
#include "src/order/pipeline.h"
#include "src/util/table_printer.h"

int main() {
  using namespace trilist;
  const size_t n = trilist_bench::ScaledN(1000000, 100000);
  Rng rng(trilist_bench::Seed());
  const Graph graph = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n, 1.7, TruncationKind::kRoot), &rng);

  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };

  // -------------------------------------------------------------------
  // A. Permutation optimality.
  // -------------------------------------------------------------------
  std::cout << "=== Ablation A: named permutations vs Algorithm-1 OPT "
               "(alpha=1.7 root, n=" << n << ") ===\n";
  const PermutationKind named[] = {
      PermutationKind::kAscending, PermutationKind::kDescending,
      PermutationKind::kRoundRobin,
      PermutationKind::kComplementaryRoundRobin, PermutationKind::kUniform};
  TablePrinter table({"method", "theta_A", "theta_D", "theta_RR",
                      "theta_CRR", "theta_U", "OPT", "OPT-complement"});
  for (Method m : FundamentalMethods()) {
    std::vector<std::string> row = {MethodName(m)};
    double best_named = 0.0;
    double worst_named = 0.0;
    for (PermutationKind kind : named) {
      const OrientedGraph og = OrientNamed(graph, kind, &rng);
      const double cost = MethodCostTotal(og, m);
      row.push_back(FormatOps(cost));
      if (best_named == 0.0 || cost < best_named) best_named = cost;
      if (cost > worst_named) worst_named = cost;
    }
    const Permutation opt = OptimalPermutation(HOf(m), true, n);
    const double opt_cost = MethodCostTotal(Orient(graph, opt), m);
    const double comp_cost =
        MethodCostTotal(Orient(graph, opt.Complement()), m);
    row.push_back(FormatOps(opt_cost));
    row.push_back(FormatOps(comp_cost));
    table.AddRow(std::move(row));

    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%s: OPT within 2%% of best named order", MethodName(m));
    check(opt_cost <= best_named * 1.02, buf);
    std::snprintf(buf, sizeof(buf),
                  "%s: OPT-complement at least as bad as worst named",
                  MethodName(m));
    check(comp_cost >= worst_named * 0.98, buf);
  }
  table.Print(std::cout);

  // -------------------------------------------------------------------
  // B. Preprocessing ablation.
  // -------------------------------------------------------------------
  std::cout << "\n=== Ablation B: preprocessing levels (Section 2.4) ===\n";
  // The classic (non-oriented) iterator pays a binary search per candidate
  // pair, so part B runs on a smaller graph.
  const size_t n_b = trilist_bench::ScaledN(100000, 30000);
  const Graph graph_b = trilist_bench::MakeBenchGraph(
      trilist_bench::ParetoSpec(n_b, 1.7, TruncationKind::kRoot), &rng);
  const OrientedGraph og_d = OrientNamed(graph_b, PermutationKind::kDescending);
  const DirectedEdgeSet arcs(og_d);
  CountingSink sink;
  const OpCounts t1_full = RunT1(og_d, arcs, &sink);
  const OpCounts t1_norelabel = RunT1NoRelabel(og_d, arcs, &sink);
  const OpCounts classic = RunClassicVertexIterator(graph_b, &sink);
  const OpCounts e1_full = RunE1(og_d, &sink);
  const OpCounts e1_norelabel = RunE1NoRelabel(og_d, &sink);

  TablePrinter prep({"configuration", "T1-class ops", "E1-class ops"});
  prep.AddRow({"relabel + orient (full framework)",
               FormatCount(static_cast<uint64_t>(t1_full.candidate_checks)),
               FormatCount(static_cast<uint64_t>(e1_full.PaperCost()))});
  prep.AddRow({"orient only (no relabeling)",
               FormatCount(static_cast<uint64_t>(
                   t1_norelabel.candidate_checks)),
               FormatCount(static_cast<uint64_t>(e1_norelabel.PaperCost()))});
  prep.AddRow({"no orientation (classic VI)",
               FormatCount(static_cast<uint64_t>(classic.candidate_checks)),
               "-"});
  prep.Print(std::cout);

  check(t1_norelabel.candidate_checks == 2 * t1_full.candidate_checks,
        "omitting relabeling exactly doubles T1's candidate count");
  check(classic.candidate_checks > 3 * t1_full.candidate_checks,
        "classic (non-oriented) VI pays > 3x the full framework");
  std::printf("%s\n\n", failures == 0 ? "all checks passed"
                                      : "SOME CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}
