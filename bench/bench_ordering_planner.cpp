/// \file bench_ordering_planner.cpp
/// The ordering shootout + planner audit behind DESIGN.md §14: on two
/// truncated-Pareto families (alpha = 1.3 heavy tail, alpha = 2.5 light
/// tail) and one structurally different real-graph stand-in (preferential
/// attachment, degree-degree correlated), run every registered ordering
/// against every fundamental method and record
///
///   - wall time of the listing under that ordering,
///   - the Section-3 predicted ops/cost (theta_D proxy for degen/AOT),
///   - the measured ops weighted into the same cost currency.
///
/// Then let the planner resolve `--method auto --order auto --intersect
/// auto` from the degree sequence alone and score its *regret*: the
/// measured weighted cost of the plan it chose divided by the measured
/// cost of the best candidate in hindsight (the oracle). The bench fails
/// if regret exceeds 10% on any graph — the acceptance gate that keeps
/// the cost model honest enough to schedule with.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/algo/cost.h"
#include "src/algo/registry.h"
#include "src/algo/triangle_sink.h"
#include "src/cost/cost_model.h"
#include "src/degree/degree_stats.h"
#include "src/gen/preferential_attachment.h"
#include "src/order/registry.h"
#include "src/run/planner.h"
#include "src/util/json_writer.h"
#include "src/util/table_printer.h"

namespace {

using namespace trilist;

struct Sample {
  std::string order;   ///< ordering key (OrientSpec::Key()).
  std::string method;
  double wall_s = 0;
  double predicted_ops = 0;
  double predicted_cost = 0;   ///< merge-backend currency.
  double measured_ops = 0;
  double measured_cost = 0;    ///< merge-backend currency.
  uint64_t triangles = 0;
};

struct GraphResult {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  std::vector<Sample> samples;
  // Planner audit.
  std::string plan_order;
  std::string plan_method;
  std::string plan_intersect;
  double plan_predicted_cost = 0;
  double plan_measured_cost = 0;
  double oracle_measured_cost = 0;
  std::string oracle_order;
  std::string oracle_method;
  double regret = 0;  ///< plan_measured / oracle_measured - 1.
};

/// Measured weighted cost of (order, method) from the shootout table.
double MeasuredCostOf(const std::vector<Sample>& samples,
                      const std::string& order, const std::string& method) {
  for (const Sample& s : samples) {
    if (s.order == order && s.method == method) return s.measured_cost;
  }
  std::fprintf(stderr, "no sample for %s/%s\n", order.c_str(),
               method.c_str());
  std::exit(1);
}

GraphResult RunShootout(const std::string& name, const Graph& graph,
                        int reps) {
  GraphResult result;
  result.name = name;
  result.nodes = graph.num_nodes();
  result.edges = graph.num_edges();

  const cost::CostModel model(AscendingDegrees(graph));
  std::printf("=== %s (n=%zu, m=%zu) ===\n", name.c_str(), result.nodes,
              result.edges);
  TablePrinter table(
      {"order", "method", "wall_ms", "pred_ops", "meas_ops", "pred_cost",
       "meas_cost"});

  for (const OrderingProvider* provider : OrderingRegistry::Instance().all()) {
    const OrientSpec spec{provider->kind(), /*seed=*/1};
    const OrientedGraph og = OrientWithSpec(graph, spec);
    for (const Method m : FundamentalMethods()) {
      OpCounts ops;
      const double wall = trilist_bench::BestWall(reps, [&] {
        CountingSink sink;
        ops = RunMethod(m, og, &sink);
      });
      Sample s;
      s.order = spec.Key();
      s.method = MethodName(m);
      s.wall_s = wall;
      s.predicted_ops = model.PredictedOps(spec, m);
      s.predicted_cost =
          model.PredictedCost(spec, m, IntersectBackend::kMerge);
      s.measured_ops = static_cast<double>(ops.PaperCost());
      s.measured_cost =
          model.WeightedCost(s.measured_ops, m, IntersectBackend::kMerge);
      s.triangles = static_cast<uint64_t>(ops.triangles);
      char wall_ms[32], pred[32], meas[32], predc[32], measc[32];
      std::snprintf(wall_ms, sizeof(wall_ms), "%.2f", wall * 1e3);
      std::snprintf(pred, sizeof(pred), "%.3g", s.predicted_ops);
      std::snprintf(meas, sizeof(meas), "%.3g", s.measured_ops);
      std::snprintf(predc, sizeof(predc), "%.3g", s.predicted_cost);
      std::snprintf(measc, sizeof(measc), "%.3g", s.measured_cost);
      table.AddRow({s.order, s.method, wall_ms, pred, meas, predc, measc});
      result.samples.push_back(std::move(s));
    }
  }
  table.Print(std::cout);

  // The planner's pick, from the degree sequence alone.
  PlannerRequest req;
  req.auto_method = true;
  req.auto_order = true;
  req.auto_intersect = true;
  const PlanResult plan = ResolvePlan(model, req);
  result.plan_order = plan.chosen.orient.Key();
  result.plan_method = MethodName(plan.chosen.methods[0]);
  result.plan_intersect = IntersectBackendName(plan.chosen.intersect);
  result.plan_predicted_cost = plan.chosen.predicted_cost;
  result.plan_measured_cost =
      MeasuredCostOf(result.samples, result.plan_order, result.plan_method);

  // Hindsight oracle over the planner's own candidate space, scored on
  // the measured side of the table (merge currency for both, so the
  // comparison is constant-speedup-free).
  result.oracle_measured_cost = std::numeric_limits<double>::infinity();
  for (const PermutationKind kind : PlannerOrderCandidates()) {
    const OrientSpec spec{kind, 1};
    for (const Method m : FundamentalMethods()) {
      const double measured =
          MeasuredCostOf(result.samples, spec.Key(), MethodName(m));
      if (measured < result.oracle_measured_cost) {
        result.oracle_measured_cost = measured;
        result.oracle_order = spec.Key();
        result.oracle_method = MethodName(m);
      }
    }
  }
  result.regret =
      result.plan_measured_cost / result.oracle_measured_cost - 1.0;
  std::printf(
      "planner: %s via %s / %s (predicted %.3g) | oracle: %s via %s "
      "(measured %.3g) | regret %.2f%%\n\n",
      result.plan_method.c_str(), result.plan_order.c_str(),
      result.plan_intersect.c_str(), result.plan_predicted_cost,
      result.oracle_method.c_str(), result.oracle_order.c_str(),
      result.oracle_measured_cost, result.regret * 100.0);
  return result;
}

}  // namespace

int main() {
  const size_t n = trilist_bench::ScaledN(1000000, 30000);
  const int reps = trilist_bench::PaperScale() ? 5 : 2;
  Rng rng(trilist_bench::Seed());

  std::vector<GraphResult> results;
  for (const double alpha : {1.3, 2.5}) {
    const Graph graph = trilist_bench::MakeBenchGraph(
        trilist_bench::ParetoSpec(n, alpha, TruncationKind::kRoot), &rng);
    char name[48];
    std::snprintf(name, sizeof(name), "pareto_alpha_%.1f", alpha);
    results.push_back(RunShootout(name, graph, reps));
  }
  {
    // Degree-correlated stand-in for a real scale-free graph.
    auto pa = GeneratePreferentialAttachment(n, /*m=*/4, &rng);
    if (!pa.ok()) {
      std::fprintf(stderr, "preferential attachment failed: %s\n",
                   pa.status().ToString().c_str());
      return 1;
    }
    results.push_back(RunShootout("preferential_attachment_m4",
                                  *std::move(pa), reps));
  }

  int failures = 0;
  for (const GraphResult& r : results) {
    const bool ok = r.regret <= 0.10;
    std::printf("  [%s] %s: planner regret %.2f%% <= 10%%\n",
                ok ? "ok" : "FAIL", r.name.c_str(), r.regret * 100.0);
    if (!ok) ++failures;
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "ordering_planner");
  w.Field("seed", static_cast<int64_t>(trilist_bench::Seed()));
  w.Field("paper_scale", trilist_bench::PaperScale());
  w.Field("n", static_cast<int64_t>(n));
  w.Field("reps", reps);
  w.Key("graphs");
  w.BeginArray();
  for (const GraphResult& r : results) {
    w.BeginObject();
    w.Field("name", r.name);
    w.Field("nodes", static_cast<int64_t>(r.nodes));
    w.Field("edges", static_cast<int64_t>(r.edges));
    w.Key("samples");
    w.BeginArray();
    for (const Sample& s : r.samples) {
      w.BeginObject();
      w.Field("order", s.order);
      w.Field("method", s.method);
      w.FieldDouble("wall_s", s.wall_s);
      w.FieldDouble("predicted_ops", s.predicted_ops, 1);
      w.FieldDouble("predicted_cost", s.predicted_cost, 1);
      w.FieldDouble("measured_ops", s.measured_ops, 1);
      w.FieldDouble("measured_cost", s.measured_cost, 1);
      w.Field("triangles", static_cast<int64_t>(s.triangles));
      w.EndObject();
    }
    w.EndArray();
    w.Key("planner");
    w.BeginObject();
    w.Field("order", r.plan_order);
    w.Field("method", r.plan_method);
    w.Field("intersect", r.plan_intersect);
    w.FieldDouble("predicted_cost", r.plan_predicted_cost, 1);
    w.FieldDouble("measured_cost", r.plan_measured_cost, 1);
    w.Field("oracle_order", r.oracle_order);
    w.Field("oracle_method", r.oracle_method);
    w.FieldDouble("oracle_measured_cost", r.oracle_measured_cost, 1);
    w.FieldDouble("regret", r.regret, 4);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.FieldDouble("regret_gate", 0.10, 2);
  w.Field("failures", failures);
  w.EndObject();

  const std::string path =
      trilist_bench::JsonPath("BENCH_ordering_planner.json");
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = std::move(w).Finish();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return failures == 0 ? 0 : 1;
}
